// Tests for the core segment manager and virtual processor manager — the
// bottom two layers of the lattice.
#include <gtest/gtest.h>

#include "src/kernel/vproc.h"

namespace mks {
namespace {

struct BottomFixture {
  KernelContext ctx{/*memory_frames=*/32, HwFeatures::KernelDesign(),
                    CostModel::kDefaultStructuredFactor, /*secret=*/1};
  CoreSegmentManager core_segs{&ctx};
};

TEST(CoreSegment, AllocateReadWrite) {
  BottomFixture fx;
  auto seg = fx.core_segs.Allocate("maps", 2);
  ASSERT_TRUE(seg.ok());
  EXPECT_EQ(fx.core_segs.SizeWords(*seg), 2 * kPageWords);
  EXPECT_EQ(fx.core_segs.Name(*seg), "maps");
  ASSERT_TRUE(fx.core_segs.WriteWord(*seg, 2047, 55).ok());
  auto value = fx.core_segs.ReadWord(*seg, 2047);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 55u);
}

TEST(CoreSegment, OutOfBoundsRejected) {
  BottomFixture fx;
  auto seg = fx.core_segs.Allocate("small", 1);
  ASSERT_TRUE(seg.ok());
  EXPECT_EQ(fx.core_segs.WriteWord(*seg, kPageWords, 1).code(), Code::kOutOfBounds);
  EXPECT_EQ(fx.core_segs.ReadWord(*seg, kPageWords).code(), Code::kOutOfBounds);
}

TEST(CoreSegment, BudgetKeepsHalfOfMemoryPageable) {
  BottomFixture fx;  // 32 frames -> at most 16 for core segments
  auto big = fx.core_segs.Allocate("big", 16);
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(fx.core_segs.Allocate("one_more", 1).code(), Code::kResourceExhausted);
  EXPECT_EQ(fx.core_segs.FirstPageableFrame(), 16u);
}

TEST(CoreSegment, SealedAfterInitialization) {
  BottomFixture fx;
  ASSERT_TRUE(fx.core_segs.Allocate("a", 1).ok());
  fx.core_segs.Seal();
  EXPECT_EQ(fx.core_segs.Allocate("b", 1).code(), Code::kFailedPrecondition);
  // Existing segments still readable/writable: the ONLY operations left.
  ASSERT_TRUE(fx.core_segs.WriteWord(CoreSegId(0), 0, 1).ok());
}

TEST(CoreSegment, RawSpanAliasesPrimaryMemory) {
  BottomFixture fx;
  auto seg = fx.core_segs.Allocate("span", 1);
  ASSERT_TRUE(seg.ok());
  auto span = fx.core_segs.RawSpan(*seg);
  span[10] = 1234;
  auto value = fx.core_segs.ReadWord(*seg, 10);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 1234u);
}

struct VprocFixture : BottomFixture {
  VirtualProcessorManager vpm{&ctx, &core_segs};
  VprocFixture() { EXPECT_TRUE(vpm.Init(4).ok()); }
};

TEST(Vproc, FixedPoolAndKernelBinding) {
  VprocFixture fx;
  EXPECT_EQ(fx.vpm.vp_count(), 4u);
  EXPECT_EQ(fx.vpm.UserPool().size(), 4u);
  int runs = 0;
  auto vp = fx.vpm.BindKernelTask("daemon", [&]() {
    ++runs;
    return runs < 3;
  });
  ASSERT_TRUE(vp.ok());
  EXPECT_TRUE(fx.vpm.IsKernelVp(*vp));
  EXPECT_EQ(fx.vpm.task_name(*vp), "daemon");
  EXPECT_EQ(fx.vpm.UserPool().size(), 3u);
}

TEST(Vproc, PoolExhaustsAtFixedSize) {
  VprocFixture fx;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(fx.vpm.BindKernelTask("t" + std::to_string(i), [] { return false; }).ok());
  }
  EXPECT_EQ(fx.vpm.BindKernelTask("extra", [] { return false; }).code(),
            Code::kResourceExhausted);
}

TEST(Vproc, AcquireAndReleaseUserVps) {
  VprocFixture fx;
  auto v1 = fx.vpm.AcquireIdleUserVp();
  auto v2 = fx.vpm.AcquireIdleUserVp();
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(fx.vpm.state(*v1), VpState::kRunning);
  fx.vpm.ReleaseUserVp(*v1);
  EXPECT_EQ(fx.vpm.state(*v1), VpState::kIdle);
  // Exhaustion.
  ASSERT_TRUE(fx.vpm.AcquireIdleUserVp().ok());
  ASSERT_TRUE(fx.vpm.AcquireIdleUserVp().ok());
  ASSERT_TRUE(fx.vpm.AcquireIdleUserVp().ok());
  EXPECT_EQ(fx.vpm.AcquireIdleUserVp().code(), Code::kResourceExhausted);
}

TEST(Vproc, AwaitAndAdvance) {
  VprocFixture fx;
  const EventcountId ec = fx.ctx.eventcounts.Create("disk_done");
  auto vp = fx.vpm.BindKernelTask("waiter", [] { return false; });
  ASSERT_TRUE(vp.ok());
  EXPECT_FALSE(fx.vpm.Await(*vp, ec, 1));
  EXPECT_EQ(fx.vpm.state(*vp), VpState::kWaiting);
  fx.vpm.Advance(ec);
  EXPECT_EQ(fx.vpm.state(*vp), VpState::kReady);
  // Already satisfied: no suspension.
  EXPECT_TRUE(fx.vpm.Await(*vp, ec, 1));
}

TEST(Vproc, RunKernelTasksReportsWork) {
  VprocFixture fx;
  int runs = 0;
  ASSERT_TRUE(fx.vpm.BindKernelTask("worker", [&]() {
                    ++runs;
                    return true;
                  })
                  .ok());
  EXPECT_TRUE(fx.vpm.RunKernelTasks());
  EXPECT_TRUE(fx.vpm.RunKernelTasks());
  EXPECT_EQ(runs, 2);
}

TEST(Vproc, StateRecordsLiveInTheCoreSegment) {
  VprocFixture fx;
  // vp_states is the first core segment this fixture allocates.
  auto state_word = fx.core_segs.ReadWord(CoreSegId(0), 0);
  ASSERT_TRUE(state_word.ok());
  auto vp = fx.vpm.AcquireIdleUserVp();
  ASSERT_TRUE(vp.ok());
  auto after = fx.core_segs.ReadWord(CoreSegId(0), vp->value * 4);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, static_cast<Word>(VpState::kRunning));
}

}  // namespace
}  // namespace mks
