// Tests for the Access Isolation Mechanism: labels, ACLs, and the reference
// monitor's mandatory checks.
#include <gtest/gtest.h>

#include "src/aim/monitor.h"

namespace mks {
namespace {

TEST(Label, DominanceBasics) {
  const Label low(0, 0);
  const Label secret(3, 0b101);
  EXPECT_TRUE(secret.Dominates(low));
  EXPECT_FALSE(low.Dominates(secret));
  EXPECT_TRUE(secret.Dominates(secret));
}

TEST(Label, CompartmentsMatter) {
  const Label a(3, 0b01);
  const Label b(3, 0b10);
  EXPECT_FALSE(a.Dominates(b));
  EXPECT_FALSE(b.Dominates(a));
  EXPECT_FALSE(a.Comparable(b));
}

TEST(Label, SystemHighDominatesEverythingLowIsDominated) {
  for (uint8_t level = 0; level <= Label::kMaxLevel; ++level) {
    const Label l(level, (1u << level) - 1);
    EXPECT_TRUE(Label::SystemHigh().Dominates(l));
    EXPECT_TRUE(l.Dominates(Label::SystemLow()));
  }
}

TEST(Label, ClampsOutOfRangeInputs) {
  const Label l(200, 0xffffffff);
  EXPECT_EQ(l.level(), Label::kMaxLevel);
  EXPECT_EQ(l.compartments(), Label::kCompartmentMask);
}

TEST(Label, ToStringReadable) {
  EXPECT_EQ(Label(3, 0b100001).ToString(), "L3{0,5}");
  EXPECT_EQ(Label::SystemLow().ToString(), "L0{}");
}

// Property sweep: lub/glb are the least upper / greatest lower bounds.
class LabelLatticeTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LabelLatticeTest, LubGlbAreBounds) {
  const auto [la, lb] = GetParam();
  const Label a(static_cast<uint8_t>(la % 8), static_cast<uint32_t>(la * 2654435761u));
  const Label b(static_cast<uint8_t>(lb % 8), static_cast<uint32_t>(lb * 40503u));
  const Label up = Label::Lub(a, b);
  const Label down = Label::Glb(a, b);
  EXPECT_TRUE(up.Dominates(a));
  EXPECT_TRUE(up.Dominates(b));
  EXPECT_TRUE(a.Dominates(down));
  EXPECT_TRUE(b.Dominates(down));
  // Tightness: lub is dominated by any common upper bound we can build.
  const Label common(7, Label::kCompartmentMask);
  EXPECT_TRUE(common.Dominates(up));
}

INSTANTIATE_TEST_SUITE_P(Pairs, LabelLatticeTest,
                         ::testing::Combine(::testing::Values(0, 1, 3, 5, 7, 11),
                                            ::testing::Values(0, 2, 4, 6, 9, 13)));

TEST(Acl, FirstMatchWins) {
  Acl acl;
  acl.Add(AclEntry{"Jones", "Projx", AccessModes::None()});
  acl.Add(AclEntry{"*", "Projx", AccessModes::RW()});
  EXPECT_FALSE(acl.ModesFor(Principal{"Jones", "Projx"}).any());
  EXPECT_TRUE(acl.ModesFor(Principal{"Smith", "Projx"}).write);
  EXPECT_FALSE(acl.ModesFor(Principal{"Smith", "Other"}).any());
}

TEST(Acl, WildcardsMatchEitherComponent) {
  Acl acl;
  acl.Add(AclEntry{"Admin", "*", AccessModes::RWE()});
  EXPECT_TRUE(acl.ModesFor(Principal{"Admin", "Anything"}).execute);
  EXPECT_FALSE(acl.ModesFor(Principal{"NotAdmin", "Anything"}).any());
}

struct MonitorFixture {
  Clock clock;
  Metrics metrics;
  ReferenceMonitor monitor{&clock, &metrics};
};

TEST(ReferenceMonitor, SimpleSecurityNoReadUp) {
  MonitorFixture fx;
  const Subject low{Principal{"Jones", "P"}, Label(1, 0), 4};
  EXPECT_TRUE(fx.monitor.CheckFlow(low, Label(1, 0), FlowDirection::kObserve).ok());
  EXPECT_TRUE(fx.monitor.CheckFlow(low, Label(0, 0), FlowDirection::kObserve).ok());
  EXPECT_EQ(fx.monitor.CheckFlow(low, Label(2, 0), FlowDirection::kObserve).code(),
            Code::kNoAccess);
}

TEST(ReferenceMonitor, StarPropertyNoWriteDown) {
  MonitorFixture fx;
  const Subject high{Principal{"Jones", "P"}, Label(3, 0), 4};
  EXPECT_TRUE(fx.monitor.CheckFlow(high, Label(3, 0), FlowDirection::kModify).ok());
  EXPECT_TRUE(fx.monitor.CheckFlow(high, Label(4, 0), FlowDirection::kModify).ok());
  EXPECT_EQ(fx.monitor.CheckFlow(high, Label(2, 0), FlowDirection::kModify).code(),
            Code::kNoAccess);
}

TEST(ReferenceMonitor, AclAndMandatoryBothRequired) {
  MonitorFixture fx;
  Acl acl;
  acl.Add(AclEntry{"Jones", "P", AccessModes::RW()});
  const Subject subject{Principal{"Jones", "P"}, Label(2, 0), 4};
  // ACL grants but the label forbids observing up.
  EXPECT_EQ(fx.monitor
                .CheckAccess(subject, acl, Label(3, 0), FlowDirection::kObserve, true, false,
                             false, "read", "x")
                .code(),
            Code::kNoAccess);
  // Label fine but ACL missing for another principal.
  const Subject other{Principal{"Smith", "P"}, Label(3, 0), 4};
  EXPECT_EQ(fx.monitor
                .CheckAccess(other, acl, Label(2, 0), FlowDirection::kObserve, true, false,
                             false, "read", "x")
                .code(),
            Code::kNoAccess);
  // Both fine.
  EXPECT_TRUE(fx.monitor
                  .CheckAccess(subject, acl, Label(2, 0), FlowDirection::kObserve, true, false,
                               false, "read", "x")
                  .ok());
}

TEST(ReferenceMonitor, ReadWriteNeedsLabelEquality) {
  MonitorFixture fx;
  Acl acl;
  acl.Add(AclEntry{"*", "*", AccessModes::RW()});
  const Subject subject{Principal{"Jones", "P"}, Label(2, 0), 4};
  // Observe+modify together requires both properties: only an equal label works.
  EXPECT_TRUE(fx.monitor
                  .CheckAccess(subject, acl, Label(2, 0), FlowDirection::kObserve, true, true,
                               false, "rw", "x")
                  .ok());
  EXPECT_FALSE(fx.monitor
                   .CheckAccess(subject, acl, Label(1, 0), FlowDirection::kObserve, true, true,
                                false, "rw", "x")
                   .ok());
  EXPECT_FALSE(fx.monitor
                   .CheckAccess(subject, acl, Label(3, 0), FlowDirection::kObserve, true, true,
                                false, "rw", "x")
                   .ok());
}

TEST(AuditLog, RecordsAndCountsDenials) {
  MonitorFixture fx;
  Acl empty;
  const Subject subject{Principal{"Mallory", "P"}, Label(0, 0), 4};
  for (int i = 0; i < 3; ++i) {
    (void)fx.monitor.CheckAccess(subject, empty, Label(0, 0), FlowDirection::kObserve, true,
                                 false, false, "read", "target" + std::to_string(i));
  }
  EXPECT_EQ(fx.monitor.audit_log().denial_count(), 3u);
  EXPECT_EQ(fx.monitor.audit_log().total_count(), 3u);
  EXPECT_EQ(fx.monitor.audit_log().records().back().subject, "Mallory.P");
}

TEST(AuditLog, BoundedCapacity) {
  AuditLog log(4);
  for (int i = 0; i < 10; ++i) {
    log.Append(AuditRecord{0, "s", "op", "t", Code::kOk});
  }
  EXPECT_EQ(log.records().size(), 4u);
  EXPECT_EQ(log.total_count(), 10u);
}

}  // namespace
}  // namespace mks
