// Direct unit tests of the page frame manager, below the gate layer.
#include <gtest/gtest.h>

#include "tests/kernel_fixture.h"

namespace mks {
namespace {

// A harness exposing one segment's paging machinery directly.
struct PfmFixture {
  PfmFixture() : fx(SmallConfig()) {
    EXPECT_TRUE(fx.boot_status.ok());
    segno = fx.MustCreate(">pfm>victim");
    entry = fx.kernel.known_segments().Lookup(fx.pid, segno);
    EXPECT_NE(entry, nullptr);
  }

  static KernelConfig SmallConfig() {
    KernelConfig config;
    config.memory_frames = 48;
    return config;
  }

  AstEntry* Ast() {
    const uint32_t index = fx.kernel.segments().FindIndex(entry->home.uid);
    return index == kNoAst ? nullptr : fx.kernel.segments().Get(index);
  }

  KernelFixture fx;
  Segno segno{};
  const KstEntry* entry = nullptr;
};

TEST(PageFrame, AddPageRejectsDuplicates) {
  PfmFixture h;
  ASSERT_TRUE(h.fx.kernel.gates().Write(*h.fx.ctx, h.segno, 0, 1).ok());
  AstEntry* ast = h.Ast();
  ASSERT_NE(ast, nullptr);
  EXPECT_EQ(h.fx.kernel.page_frames()
                .AddPage(&ast->page_table, 0, ast->pack, ast->vtoc, ast->quota_cell,
                         ast->page_ec)
                .code(),
            Code::kFailedPrecondition);
}

TEST(PageFrame, EvictAndRefault) {
  PfmFixture h;
  KernelGates& gates = h.fx.kernel.gates();
  ASSERT_TRUE(gates.Write(*h.fx.ctx, h.segno, 5, 99).ok());
  AstEntry* ast = h.Ast();
  ASSERT_NE(ast, nullptr);
  ASSERT_TRUE(ast->page_table.ptws[0].in_core);
  const uint32_t free_before = h.fx.kernel.page_frames().free_frames();
  ASSERT_TRUE(h.fx.kernel.page_frames()
                  .EvictPage(&ast->page_table, 0, ast->pack, ast->vtoc, ast->quota_cell,
                             ast->page_ec)
                  .ok());
  EXPECT_FALSE(ast->page_table.ptws[0].in_core);
  EXPECT_EQ(h.fx.kernel.page_frames().free_frames(), free_before + 1);
  // Refault through the gate: the data comes back from the record.
  auto value = gates.Read(*h.fx.ctx, h.segno, 5);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 99u);
}

TEST(PageFrame, EvictingAnAbsentPageIsANoOp) {
  PfmFixture h;
  ASSERT_TRUE(h.fx.kernel.gates().Write(*h.fx.ctx, h.segno, 0, 1).ok());
  AstEntry* ast = h.Ast();
  EXPECT_TRUE(h.fx.kernel.page_frames()
                  .EvictPage(&ast->page_table, 3, ast->pack, ast->vtoc, ast->quota_cell,
                             ast->page_ec)
                  .ok());
}

TEST(PageFrame, WriterDaemonCleansModifiedPages) {
  PfmFixture h;
  KernelGates& gates = h.fx.kernel.gates();
  for (uint32_t p = 0; p < 6; ++p) {
    ASSERT_TRUE(gates.Write(*h.fx.ctx, h.segno, p * kPageWords, p + 1).ok());
  }
  AstEntry* ast = h.Ast();
  // The daemon skips recently-used pages; age them first.
  for (uint32_t p = 0; p < 6; ++p) {
    ast->page_table.ptws[p].used = false;
  }
  EXPECT_TRUE(h.fx.kernel.page_frames().PageWriterStep(16));
  EXPECT_GT(h.fx.kernel.metrics().Get("pfm.daemon_writes"), 0u);
  for (uint32_t p = 0; p < 6; ++p) {
    EXPECT_FALSE(ast->page_table.ptws[p].modified) << p;
    EXPECT_TRUE(ast->page_table.ptws[p].in_core) << p;  // cleaned, not evicted
  }
  // Nothing left to write on the second pass.
  EXPECT_FALSE(h.fx.kernel.page_frames().PageWriterStep(16));
}

TEST(PageFrame, ZeroScanChargedOnlyForModifiedEvictions) {
  PfmFixture h;
  KernelGates& gates = h.fx.kernel.gates();
  ASSERT_TRUE(gates.Write(*h.fx.ctx, h.segno, 0, 1).ok());
  AstEntry* ast = h.Ast();
  const uint64_t scans_before = h.fx.kernel.metrics().Get("hw.zero_scans");
  // First eviction: modified -> scanned.
  ASSERT_TRUE(h.fx.kernel.page_frames()
                  .EvictPage(&ast->page_table, 0, ast->pack, ast->vtoc, ast->quota_cell,
                             ast->page_ec)
                  .ok());
  EXPECT_EQ(h.fx.kernel.metrics().Get("hw.zero_scans"), scans_before + 1);
  // Fault it back READ-only and evict again: clean -> no scan.
  ASSERT_TRUE(gates.Read(*h.fx.ctx, h.segno, 0).ok());
  ASSERT_TRUE(h.fx.kernel.page_frames()
                  .EvictPage(&ast->page_table, 0, ast->pack, ast->vtoc, ast->quota_cell,
                             ast->page_ec)
                  .ok());
  EXPECT_EQ(h.fx.kernel.metrics().Get("hw.zero_scans"), scans_before + 1);
}

TEST(PageFrame, SequentialSweepLargerThanMemoryMakesProgress) {
  KernelConfig config;
  config.memory_frames = 48;
  config.ast_slots = 16;
  KernelFixture fx{config};
  ASSERT_TRUE(fx.boot_status.ok());
  const Segno segno = fx.MustCreate(">pfm>big");
  KernelGates& gates = fx.kernel.gates();
  for (uint32_t p = 0; p < 64; ++p) {
    ASSERT_TRUE(gates.Write(*fx.ctx, segno, p * kPageWords + p, p).ok()) << p;
  }
  for (uint32_t p = 0; p < 64; ++p) {
    auto value = gates.Read(*fx.ctx, segno, p * kPageWords + p);
    ASSERT_TRUE(value.ok()) << p;
    EXPECT_EQ(*value, p);
  }
  EXPECT_GT(fx.kernel.metrics().Get("pfm.evictions"), 0u);
  EXPECT_GT(fx.kernel.metrics().Get("pfm.writebacks"), 0u);
  EXPECT_TRUE(fx.kernel.AuditIntegrity().empty());
}

TEST(KnownSegment, InitiateAssignsDistinctSegnosPerProcess) {
  KernelFixture fx;
  ASSERT_TRUE(fx.boot_status.ok());
  const Segno a = fx.MustCreate(">k>a");
  const Segno b = fx.MustCreate(">k>b");
  EXPECT_NE(a.value, b.value);
  EXPECT_GE(a.value, kSystemSegnoLimit);
  // A second process gets its own numbering, independent of the first.
  auto other = fx.kernel.processes().CreateProcess(TestSubject("Other"));
  ASSERT_TRUE(other.ok());
  ProcContext* ctx2 = fx.kernel.processes().Context(*other);
  PathWalker walker(&fx.kernel.gates());
  auto b2 = walker.Initiate(*ctx2, ">k>b");
  ASSERT_TRUE(b2.ok());
  // Different processes may reuse the same segment numbers for different
  // segments; identity lives in the uid, not the number.
  const KstEntry* mine = fx.kernel.known_segments().Lookup(fx.pid, b);
  const KstEntry* theirs = fx.kernel.known_segments().Lookup(*other, *b2);
  ASSERT_NE(mine, nullptr);
  ASSERT_NE(theirs, nullptr);
  EXPECT_EQ(mine->home.uid.value, theirs->home.uid.value);
}

TEST(KnownSegment, SegnoOfFindsBindings) {
  KernelFixture fx;
  ASSERT_TRUE(fx.boot_status.ok());
  const Segno segno = fx.MustCreate(">k>x");
  const KstEntry* entry = fx.kernel.known_segments().Lookup(fx.pid, segno);
  ASSERT_NE(entry, nullptr);
  auto found = fx.kernel.known_segments().SegnoOf(fx.pid, entry->home.uid);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->value, segno.value);
  EXPECT_EQ(fx.kernel.known_segments().SegnoOf(fx.pid, SegmentUid(0xdead)).code(),
            Code::kNotFound);
}

TEST(KnownSegment, KstExhaustionReported) {
  KernelConfig config;
  config.user_sdw_count = 8;  // tiny KST (some slots used by the state segment)
  KernelFixture fx{config};
  ASSERT_TRUE(fx.boot_status.ok());
  Status last = Status::Ok();
  for (int i = 0; i < 12 && last.ok(); ++i) {
    PathWalker walker(&fx.kernel.gates());
    auto entry = walker.CreateSegment(*fx.ctx, ">k>f" + std::to_string(i), WorldAcl(),
                                      Label::SystemLow());
    ASSERT_TRUE(entry.ok());
    last = fx.kernel.gates().Initiate(*fx.ctx, *entry).status();
  }
  EXPECT_EQ(last.code(), Code::kResourceExhausted);
}

}  // namespace
}  // namespace mks
