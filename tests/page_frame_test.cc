// Direct unit tests of the page frame manager, below the gate layer.
#include <gtest/gtest.h>

#include "tests/kernel_fixture.h"

namespace mks {
namespace {

// A harness exposing one segment's paging machinery directly.
struct PfmFixture {
  PfmFixture() : fx(SmallConfig()) {
    EXPECT_TRUE(fx.boot_status.ok());
    segno = fx.MustCreate(">pfm>victim");
    entry = fx.kernel.known_segments().Lookup(fx.pid, segno);
    EXPECT_NE(entry, nullptr);
  }

  static KernelConfig SmallConfig() {
    KernelConfig config;
    config.memory_frames = 48;
    return config;
  }

  AstEntry* Ast() {
    const uint32_t index = fx.kernel.segments().FindIndex(entry->home.uid);
    return index == kNoAst ? nullptr : fx.kernel.segments().Get(index);
  }

  KernelFixture fx;
  Segno segno{};
  const KstEntry* entry = nullptr;
};

TEST(PageFrame, AddPageRejectsDuplicates) {
  PfmFixture h;
  ASSERT_TRUE(h.fx.kernel.gates().Write(*h.fx.ctx, h.segno, 0, 1).ok());
  AstEntry* ast = h.Ast();
  ASSERT_NE(ast, nullptr);
  EXPECT_EQ(h.fx.kernel.page_frames()
                .AddPage(&ast->page_table, 0, ast->pack, ast->vtoc, ast->quota_cell,
                         ast->page_ec)
                .code(),
            Code::kFailedPrecondition);
}

TEST(PageFrame, EvictAndRefault) {
  PfmFixture h;
  KernelGates& gates = h.fx.kernel.gates();
  ASSERT_TRUE(gates.Write(*h.fx.ctx, h.segno, 5, 99).ok());
  AstEntry* ast = h.Ast();
  ASSERT_NE(ast, nullptr);
  ASSERT_TRUE(ast->page_table.ptws[0].in_core);
  const uint32_t free_before = h.fx.kernel.page_frames().free_frames();
  ASSERT_TRUE(h.fx.kernel.page_frames()
                  .EvictPage(&ast->page_table, 0, ast->pack, ast->vtoc, ast->quota_cell,
                             ast->page_ec)
                  .ok());
  EXPECT_FALSE(ast->page_table.ptws[0].in_core);
  EXPECT_EQ(h.fx.kernel.page_frames().free_frames(), free_before + 1);
  // Refault through the gate: the data comes back from the record.
  auto value = gates.Read(*h.fx.ctx, h.segno, 5);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 99u);
}

TEST(PageFrame, EvictingAnAbsentPageIsANoOp) {
  PfmFixture h;
  ASSERT_TRUE(h.fx.kernel.gates().Write(*h.fx.ctx, h.segno, 0, 1).ok());
  AstEntry* ast = h.Ast();
  EXPECT_TRUE(h.fx.kernel.page_frames()
                  .EvictPage(&ast->page_table, 3, ast->pack, ast->vtoc, ast->quota_cell,
                             ast->page_ec)
                  .ok());
}

TEST(PageFrame, WriterDaemonCleansModifiedPages) {
  PfmFixture h;
  KernelGates& gates = h.fx.kernel.gates();
  for (uint32_t p = 0; p < 6; ++p) {
    ASSERT_TRUE(gates.Write(*h.fx.ctx, h.segno, p * kPageWords, p + 1).ok());
  }
  AstEntry* ast = h.Ast();
  // The daemon skips recently-used pages; age them first.
  for (uint32_t p = 0; p < 6; ++p) {
    ast->page_table.ptws[p].used = false;
  }
  EXPECT_TRUE(h.fx.kernel.page_frames().PageWriterStep(16));
  EXPECT_GT(h.fx.kernel.metrics().Get("pfm.daemon_writes"), 0u);
  for (uint32_t p = 0; p < 6; ++p) {
    EXPECT_FALSE(ast->page_table.ptws[p].modified) << p;
    EXPECT_TRUE(ast->page_table.ptws[p].in_core) << p;  // cleaned, not evicted
  }
  // Nothing left to write on the second pass.
  EXPECT_FALSE(h.fx.kernel.page_frames().PageWriterStep(16));
}

TEST(PageFrame, ZeroScanChargedOnlyForModifiedEvictions) {
  PfmFixture h;
  KernelGates& gates = h.fx.kernel.gates();
  ASSERT_TRUE(gates.Write(*h.fx.ctx, h.segno, 0, 1).ok());
  AstEntry* ast = h.Ast();
  const uint64_t scans_before = h.fx.kernel.metrics().Get("hw.zero_scans");
  // First eviction: modified -> scanned.
  ASSERT_TRUE(h.fx.kernel.page_frames()
                  .EvictPage(&ast->page_table, 0, ast->pack, ast->vtoc, ast->quota_cell,
                             ast->page_ec)
                  .ok());
  EXPECT_EQ(h.fx.kernel.metrics().Get("hw.zero_scans"), scans_before + 1);
  // Fault it back READ-only and evict again: clean -> no scan.
  ASSERT_TRUE(gates.Read(*h.fx.ctx, h.segno, 0).ok());
  ASSERT_TRUE(h.fx.kernel.page_frames()
                  .EvictPage(&ast->page_table, 0, ast->pack, ast->vtoc, ast->quota_cell,
                             ast->page_ec)
                  .ok());
  EXPECT_EQ(h.fx.kernel.metrics().Get("hw.zero_scans"), scans_before + 1);
}

TEST(PageFrame, SequentialSweepLargerThanMemoryMakesProgress) {
  KernelConfig config;
  config.memory_frames = 48;
  config.ast_slots = 16;
  KernelFixture fx{config};
  ASSERT_TRUE(fx.boot_status.ok());
  const Segno segno = fx.MustCreate(">pfm>big");
  KernelGates& gates = fx.kernel.gates();
  for (uint32_t p = 0; p < 64; ++p) {
    ASSERT_TRUE(gates.Write(*fx.ctx, segno, p * kPageWords + p, p).ok()) << p;
  }
  for (uint32_t p = 0; p < 64; ++p) {
    auto value = gates.Read(*fx.ctx, segno, p * kPageWords + p);
    ASSERT_TRUE(value.ok()) << p;
    EXPECT_EQ(*value, p);
  }
  EXPECT_GT(fx.kernel.metrics().Get("pfm.evictions"), 0u);
  EXPECT_GT(fx.kernel.metrics().Get("pfm.writebacks"), 0u);
  EXPECT_TRUE(fx.kernel.AuditIntegrity().empty());
}

// ---- Anticipatory paging pipeline ----

// A user-visible snapshot of one pipelined run: every value the workload
// read, plus the post-shutdown on-disk state (per-VTOC logical page contents
// and flushed quota counts — logical, not record indices, because zero-page
// reclaim and reallocation may legally renumber records).
struct PipelineObservation {
  std::vector<uint64_t> reads;
  // One line per (pack, vtoc, page): "uid:page=word0" or "uid:page=zero".
  std::vector<std::string> disk;
  std::vector<std::string> quota;
  uint64_t free_records = 0;
};

// The same pressured workload for every knob setting: fill 64 pages (48-frame
// machine), punch a run of zero pages, then sequential and scattered read
// passes with the page-writer pumped as idle time.
PipelineObservation RunPipelineWorkload(const PagingPipeline& pipeline) {
  KernelConfig config;
  config.memory_frames = 48;
  config.paging_pipeline = pipeline;
  KernelFixture fx{config};
  EXPECT_TRUE(fx.boot_status.ok());
  const Segno segno = fx.MustCreate(">eq>a");
  KernelGates& gates = fx.kernel.gates();
  PipelineObservation obs;
  uint32_t refs = 0;
  auto touch = [&](uint32_t page) {
    auto value = gates.Read(*fx.ctx, segno, page * kPageWords);
    EXPECT_TRUE(value.ok()) << page;
    obs.reads.push_back(value.ok() ? *value : UINT64_MAX);
    if (++refs % 4 == 0) {
      (void)fx.kernel.vprocs().RunKernelTask("page_writer");
    }
  };
  for (uint32_t p = 0; p < 64; ++p) {
    EXPECT_TRUE(gates.Write(*fx.ctx, segno, p * kPageWords, p + 1).ok()) << p;
  }
  for (uint32_t p = 40; p < 48; ++p) {  // these become zero pages at eviction
    EXPECT_TRUE(gates.Write(*fx.ctx, segno, p * kPageWords, 0).ok()) << p;
  }
  for (uint32_t round = 0; round < 2; ++round) {
    for (uint32_t p = 0; p < 64; ++p) {
      touch(p);
    }
  }
  for (uint32_t i = 0, p = 0; i < 64; ++i, p = (p + 29) % 64) {
    touch(p);
  }
  EXPECT_TRUE(fx.kernel.AuditIntegrity().empty());
  EXPECT_TRUE(fx.kernel.Shutdown().ok());
  // On-disk state after an orderly shutdown.
  std::vector<Word> buf(kPageWords);
  for (uint16_t p = 0; p < fx.kernel.config().pack_count; ++p) {
    const DiskPack* pack = fx.kernel.ctx().volumes.pack(PackId(p));
    obs.free_records += pack->free_records();
    for (uint32_t v = 0; v < pack->vtoc_slots(); ++v) {
      const VtocEntry* entry = pack->GetVtoc(VtocIndex(v));
      if (entry == nullptr) {
        continue;
      }
      const std::string uid = std::to_string(entry->uid.value);
      for (uint32_t page = 0; page < entry->file_map.size(); ++page) {
        const FileMapEntry& fm = entry->file_map[page];
        if (fm.zero) {
          obs.disk.push_back(uid + ":" + std::to_string(page) + "=zero");
        } else if (fm.allocated) {
          pack->CopyRecord(fm.record, std::span<Word>(buf));
          obs.disk.push_back(uid + ":" + std::to_string(page) + "=" +
                             std::to_string(buf[0]));
        }
      }
      if (entry->quota.present) {
        obs.quota.push_back(uid + "=" + std::to_string(entry->quota.count) + "/" +
                            std::to_string(entry->quota.limit));
      }
    }
  }
  return obs;
}

TEST(PagingPipeline, EveryKnobCombinationIsObservationallyEquivalent) {
  const PipelineObservation baseline = RunPipelineWorkload(PagingPipeline{});
  ASSERT_EQ(baseline.reads.size(), 64u * 3);
  for (int mask = 1; mask < 8; ++mask) {
    PagingPipeline pp;
    pp.precleaning = (mask & 1) != 0;
    pp.batched_io = (mask & 2) != 0;
    pp.readahead = (mask & 4) != 0;
    const PipelineObservation obs = RunPipelineWorkload(pp);
    EXPECT_EQ(obs.reads, baseline.reads) << "mask " << mask;
    EXPECT_EQ(obs.disk, baseline.disk) << "mask " << mask;
    EXPECT_EQ(obs.quota, baseline.quota) << "mask " << mask;
    EXPECT_EQ(obs.free_records, baseline.free_records) << "mask " << mask;
  }
}

TEST(PagingPipeline, PrecleaningKeepsTheFaultPathOutOfEvictions) {
  PagingPipeline pp;
  pp.precleaning = true;
  KernelConfig config;
  config.memory_frames = 48;
  config.paging_pipeline = pp;
  KernelFixture fx{config};
  ASSERT_TRUE(fx.boot_status.ok());
  const Segno segno = fx.MustCreate(">wm>a");
  KernelGates& gates = fx.kernel.gates();
  for (uint32_t p = 0; p < 64; ++p) {
    ASSERT_TRUE(gates.Write(*fx.ctx, segno, p * kPageWords, p + 1).ok());
  }
  PageFrameManager& pfm = fx.kernel.page_frames();
  // The fill above ran without idle time; count from here, where the daemon
  // gets its pumps.
  const uint64_t inline0 = fx.kernel.metrics().Get("pfm.inline_evictions");
  const uint64_t evict0 = fx.kernel.metrics().Get("pfm.evictions");
  const uint64_t precleaned0 = fx.kernel.metrics().Get("pfm.precleaned_frames");
  (void)fx.kernel.vprocs().RunKernelTask("page_writer");  // prime the pool
  bool replenished_once = false;
  uint32_t refs = 0;
  for (uint32_t round = 0; round < 3; ++round) {
    for (uint32_t p = 0; p < 64; ++p) {
      ASSERT_TRUE(gates.Read(*fx.ctx, segno, p * kPageWords).ok());
      if (++refs % 4 == 0) {
        const bool was_dry = pfm.free_frames() < pp.low_watermark;
        (void)fx.kernel.vprocs().RunKernelTask("page_writer");
        // Watermark invariant: a pump that found the pool below the low
        // watermark leaves it at the high watermark (plenty is evictable
        // here), and never overshoots it.
        if (was_dry) {
          EXPECT_EQ(pfm.free_frames(), pp.high_watermark);
          replenished_once = true;
        }
        EXPECT_GE(pfm.free_frames(), pp.low_watermark);
      }
    }
  }
  EXPECT_TRUE(replenished_once);
  // Pumped often enough, demand never finds the pool dry: zero inline
  // evictions, all replacement moved to the daemon.
  EXPECT_EQ(fx.kernel.metrics().Get("pfm.inline_evictions") - inline0, 0u);
  EXPECT_GT(fx.kernel.metrics().Get("pfm.precleaned_frames") - precleaned0, 0u);
  EXPECT_EQ(fx.kernel.metrics().Get("pfm.evictions") - evict0,
            fx.kernel.metrics().Get("pfm.precleaned_frames") - precleaned0);
}

TEST(PagingPipeline, PrefetchAccountingBalances) {
  KernelConfig config;
  config.memory_frames = 48;
  config.paging_pipeline = PagingPipeline::Full();
  KernelFixture fx{config};
  ASSERT_TRUE(fx.boot_status.ok());
  const Segno segno = fx.MustCreate(">pf>a");
  KernelGates& gates = fx.kernel.gates();
  for (uint32_t p = 0; p < 64; ++p) {
    ASSERT_TRUE(gates.Write(*fx.ctx, segno, p * kPageWords, p + 1).ok());
  }
  uint32_t refs = 0;
  for (uint32_t round = 0; round < 3; ++round) {
    for (uint32_t p = 0; p < 64; ++p) {
      ASSERT_TRUE(gates.Read(*fx.ctx, segno, p * kPageWords).ok());
      if (++refs % 4 == 0) {
        (void)fx.kernel.vprocs().RunKernelTask("page_writer");
      }
    }
  }
  Metrics& m = fx.kernel.metrics();
  EXPECT_GT(m.Get("pfm.prefetch_issued"), 0u);
  EXPECT_GT(m.Get("pfm.prefetch_hits"), 0u);
  // The sequential scan consumes what it anticipates: every prefetched page
  // is referenced before the clock reclaims it.
  EXPECT_EQ(m.Get("pfm.prefetch_waste"), 0u);
  // Fault suppression is the point: far fewer demand faults than touches.
  EXPECT_LT(m.Get("pfm.faults_serviced"), uint64_t{3 * 64});
  // Deactivating everything forces a final verdict on every prefetched frame:
  // the books must balance exactly.
  ASSERT_TRUE(fx.kernel.Shutdown().ok());
  EXPECT_EQ(m.Get("pfm.prefetch_issued"),
            m.Get("pfm.prefetch_hits") + m.Get("pfm.prefetch_waste"));
}

TEST(KnownSegment, InitiateAssignsDistinctSegnosPerProcess) {
  KernelFixture fx;
  ASSERT_TRUE(fx.boot_status.ok());
  const Segno a = fx.MustCreate(">k>a");
  const Segno b = fx.MustCreate(">k>b");
  EXPECT_NE(a.value, b.value);
  EXPECT_GE(a.value, kSystemSegnoLimit);
  // A second process gets its own numbering, independent of the first.
  auto other = fx.kernel.processes().CreateProcess(TestSubject("Other"));
  ASSERT_TRUE(other.ok());
  ProcContext* ctx2 = fx.kernel.processes().Context(*other);
  PathWalker walker(&fx.kernel.gates());
  auto b2 = walker.Initiate(*ctx2, ">k>b");
  ASSERT_TRUE(b2.ok());
  // Different processes may reuse the same segment numbers for different
  // segments; identity lives in the uid, not the number.
  const KstEntry* mine = fx.kernel.known_segments().Lookup(fx.pid, b);
  const KstEntry* theirs = fx.kernel.known_segments().Lookup(*other, *b2);
  ASSERT_NE(mine, nullptr);
  ASSERT_NE(theirs, nullptr);
  EXPECT_EQ(mine->home.uid.value, theirs->home.uid.value);
}

TEST(KnownSegment, SegnoOfFindsBindings) {
  KernelFixture fx;
  ASSERT_TRUE(fx.boot_status.ok());
  const Segno segno = fx.MustCreate(">k>x");
  const KstEntry* entry = fx.kernel.known_segments().Lookup(fx.pid, segno);
  ASSERT_NE(entry, nullptr);
  auto found = fx.kernel.known_segments().SegnoOf(fx.pid, entry->home.uid);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->value, segno.value);
  EXPECT_EQ(fx.kernel.known_segments().SegnoOf(fx.pid, SegmentUid(0xdead)).code(),
            Code::kNotFound);
}

TEST(KnownSegment, KstExhaustionReported) {
  KernelConfig config;
  config.user_sdw_count = 8;  // tiny KST (some slots used by the state segment)
  KernelFixture fx{config};
  ASSERT_TRUE(fx.boot_status.ok());
  Status last = Status::Ok();
  for (int i = 0; i < 12 && last.ok(); ++i) {
    PathWalker walker(&fx.kernel.gates());
    auto entry = walker.CreateSegment(*fx.ctx, ">k>f" + std::to_string(i), WorldAcl(),
                                      Label::SystemLow());
    ASSERT_TRUE(entry.ok());
    last = fx.kernel.gates().Initiate(*fx.ctx, *entry).status();
  }
  EXPECT_EQ(last.code(), Code::kResourceExhausted);
}

}  // namespace
}  // namespace mks
