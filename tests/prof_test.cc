// Tests for the cycle-accounting profiler and the stall watchdog.
//
// The profiler's contract (DESIGN.md §5): with profiling on, every cycle a
// CPU's local clock advances is attributed to exactly one domain node, so
//
//     attributed(cpu) == accrued(cpu) == smp.local_now(cpu)
//
// holds at quiescence for every workload shape and every pool size; with
// profiling off the kernel's observable behaviour is bit-identical.  The
// watchdog's contract is independent: a scheduler-progress stamp (quanta run
// + device completions + wakeups) frozen across `stall_rounds` dispatch
// rounds aborts with a flight-recorder dump.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/sync/spinlock.h"
#include "tests/kernel_fixture.h"

namespace mks {
namespace {

// ---------------------------------------------------------------------------
// Unit level: attribution mechanics against a bare clock.
// ---------------------------------------------------------------------------

TEST(ProfUnit, ScopesSplitAWindowExactly) {
  Clock clock;
  CostModel cost{&clock};
  Prof prof(&clock);
  ProfConfig config;
  config.enabled = true;
  prof.Enable(2, config);
  {
    Prof::Window window(&prof, 0, ProfDomain::kDispatch);
    cost.Charge(CodeStyle::kOptimized, 100);
    {
      Prof::Scope gate(&prof, ProfDomain::kGate);
      cost.Charge(CodeStyle::kOptimized, 40);
      {
        Prof::Scope lock(&prof, ProfDomain::kLockSpin);
        cost.Charge(CodeStyle::kOptimized, 7);
      }
    }
    cost.Charge(CodeStyle::kOptimized, 10);
  }
  prof.NoteAccrue(0, 157);
  EXPECT_EQ(prof.attributed(0), 157u);
  EXPECT_EQ(prof.accrued(0), 157u);
  EXPECT_EQ(prof.attributed(1), 0u);
  const auto totals = prof.DomainTotals();
  EXPECT_EQ(totals[static_cast<size_t>(ProfDomain::kDispatch)], 110u);
  EXPECT_EQ(totals[static_cast<size_t>(ProfDomain::kGate)], 40u);
  EXPECT_EQ(totals[static_cast<size_t>(ProfDomain::kLockSpin)], 7u);
  // The tree keeps the nesting: lock-spin is a child of gate under dispatch.
  const std::string folded = prof.CollapsedStacks();
  EXPECT_NE(folded.find("cpu0;dispatch 110\n"), std::string::npos) << folded;
  EXPECT_NE(folded.find("cpu0;dispatch;gate 40\n"), std::string::npos) << folded;
  EXPECT_NE(folded.find("cpu0;dispatch;gate;lock-spin 7\n"), std::string::npos) << folded;
}

TEST(ProfUnit, ScopesAreInertOutsideAWindow) {
  Clock clock;
  CostModel cost{&clock};
  Prof prof(&clock);
  ProfConfig config;
  config.enabled = true;
  prof.Enable(1, config);
  // Boot/setup shape: charges with no window open must not be attributed.
  {
    Prof::Scope orphan(&prof, ProfDomain::kGate);
    cost.Charge(CodeStyle::kOptimized, 500);
  }
  EXPECT_EQ(prof.attributed(0), 0u);
  EXPECT_TRUE(prof.CollapsedStacks().empty());
}

TEST(ProfUnit, WatchdogCountsOnlyConsecutiveFrozenRounds) {
  Clock clock;
  Prof prof(&clock);
  ProfConfig config;
  config.stall_rounds = 3;
  prof.Enable(1, config);  // watchdog armed, attribution off
  EXPECT_FALSE(prof.NoteDispatchRound(10));
  EXPECT_FALSE(prof.NoteDispatchRound(10));
  EXPECT_FALSE(prof.NoteDispatchRound(10));
  EXPECT_FALSE(prof.NoteDispatchRound(11));  // progress resets the count
  EXPECT_FALSE(prof.NoteDispatchRound(11));
  EXPECT_FALSE(prof.NoteDispatchRound(11));
  EXPECT_TRUE(prof.NoteDispatchRound(11));

  Prof disarmed(&clock);
  disarmed.Enable(1, ProfConfig{});  // stall_rounds == 0: never fires
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(disarmed.NoteDispatchRound(42));
  }
}

// ---------------------------------------------------------------------------
// Kernel level: the accounting identity on real workloads.
// ---------------------------------------------------------------------------

// Asserts the ledger identity on every CPU of a finished run.
void ExpectLedgerBalanced(Kernel& kernel) {
  Prof& prof = kernel.ctx().prof;
  ASSERT_TRUE(prof.enabled());
  Cycles attributed_total = 0;
  for (uint16_t cpu = 0; cpu < prof.cpu_count(); ++cpu) {
    EXPECT_EQ(prof.attributed(cpu), prof.accrued(cpu)) << "cpu " << cpu;
    EXPECT_EQ(prof.accrued(cpu), kernel.ctx().smp.local_now(cpu)) << "cpu " << cpu;
    attributed_total += prof.attributed(cpu);
  }
  // The domain totals are a partition of the same cycles.
  Cycles domain_total = 0;
  for (Cycles c : kernel.ctx().prof.DomainTotals()) {
    domain_total += c;
  }
  EXPECT_EQ(domain_total, attributed_total);
}

KernelConfig ProfConfigFor(uint16_t cpus) {
  KernelConfig config;
  config.cpu_count = cpus;
  config.vp_count = 6;
  config.memory_frames = 48;
  config.profile.enabled = true;
  return config;
}

// P11 shape: private paged working sets larger than memory, so dispatch,
// fault service, and paging I/O all run.
void RunFaultStorm(Kernel& kernel) {
  PathWalker walker(&kernel.gates());
  for (uint32_t i = 0; i < 6; ++i) {
    auto pid = kernel.processes().CreateProcess(TestSubject("F" + std::to_string(i)));
    ASSERT_TRUE(pid.ok());
    ProcContext* ctx = kernel.processes().Context(*pid);
    auto entry = walker.CreateSegment(*ctx, ">work>f" + std::to_string(i), WorldAcl(),
                                      Label::SystemLow());
    ASSERT_TRUE(entry.ok());
    auto segno = kernel.gates().Initiate(*ctx, *entry);
    ASSERT_TRUE(segno.ok());
    std::vector<UserOp> program;
    for (uint32_t n = 0; n < 40; ++n) {
      program.push_back(n % 3 == 0 ? UserOp::Compute(25)
                                   : UserOp::Write(*segno, (n % 10) * kPageWords + n, n + 1));
    }
    ASSERT_TRUE(kernel.processes().SetProgram(*pid, std::move(program)).ok());
  }
  ASSERT_TRUE(kernel.processes().RunUntilQuiescent(1000000).ok());
}

// P12 shape: every process sweeps the SAME segment with async paging on, so
// CPUs collide on in-flight pages and park on locked descriptors.
void RunSharedStorm(Kernel& kernel) {
  PathWalker walker(&kernel.gates());
  std::vector<ProcessId> pids;
  std::vector<ProcContext*> ctxs;
  for (uint32_t i = 0; i < 4; ++i) {
    auto pid = kernel.processes().CreateProcess(TestSubject("S" + std::to_string(i)));
    ASSERT_TRUE(pid.ok());
    pids.push_back(*pid);
    ctxs.push_back(kernel.processes().Context(*pid));
  }
  auto entry = walker.CreateSegment(*ctxs[0], ">work>shared", WorldAcl(), Label::SystemLow());
  ASSERT_TRUE(entry.ok());
  constexpr uint32_t kPages = 24;
  for (uint32_t i = 0; i < pids.size(); ++i) {
    auto segno = kernel.gates().Initiate(*ctxs[i], *entry);
    ASSERT_TRUE(segno.ok());
    if (i == 0) {
      for (uint32_t p = 0; p < kPages; ++p) {
        ASSERT_TRUE(kernel.gates().Write(*ctxs[0], *segno, p * kPageWords, p + 1).ok());
      }
    }
    std::vector<UserOp> program;
    const uint32_t start = i * (kPages / 4);
    for (uint32_t p = 0; p < 2 * kPages; ++p) {
      program.push_back(UserOp::Read(*segno, ((start + p) % kPages) * kPageWords));
    }
    ASSERT_TRUE(kernel.processes().SetProgram(pids[i], std::move(program)).ok());
  }
  ASSERT_TRUE(kernel.processes().RunUntilQuiescent(2000000).ok());
}

TEST(ProfInvariant, FaultStormBalancesAtEveryPoolSize) {
  for (uint16_t cpus : {uint16_t{1}, uint16_t{4}, uint16_t{16}}) {
    Kernel kernel{ProfConfigFor(cpus)};
    ASSERT_TRUE(kernel.Boot().ok());
    RunFaultStorm(kernel);
    ExpectLedgerBalanced(kernel);
  }
}

TEST(ProfInvariant, SharedSegmentStormBalancesAtEveryPoolSize) {
  for (uint16_t cpus : {uint16_t{1}, uint16_t{4}, uint16_t{16}}) {
    KernelConfig config = ProfConfigFor(cpus);
    // Boot pins most of the 48-frame pool in kernel core, leaving fewer free
    // frames than the 24-page shared sweep, so the storm faults continuously.
    config.async_paging = true;
    Kernel kernel{config};
    ASSERT_TRUE(kernel.Boot().ok());
    RunSharedStorm(kernel);
    ExpectLedgerBalanced(kernel);
  }
}

// P16 shape: the bench drives gate calls directly, one anchored window per
// op, the way bench_perf_name_storm does — exercises Window outside the
// process scheduler.
TEST(ProfInvariant, DirectDrivenWindowsBalanceAtEveryPoolSize) {
  for (uint16_t cpus : {uint16_t{1}, uint16_t{4}, uint16_t{16}}) {
    KernelConfig config = ProfConfigFor(cpus);
    Kernel kernel{config};
    ASSERT_TRUE(kernel.Boot().ok());
    KernelContext& kctx = kernel.ctx();
    PathWalker walker(&kernel.gates());
    auto pid = kernel.processes().CreateProcess(TestSubject());
    ASSERT_TRUE(pid.ok());
    ProcContext* ctx = kernel.processes().Context(*pid);
    for (uint32_t s = 0; s < 4; ++s) {
      ASSERT_TRUE(walker
                      .CreateSegment(*ctx, ">lib>s" + std::to_string(s), WorldAcl(),
                                     Label::SystemLow())
                      .ok());
    }
    kctx.smp.AlignAll();
    for (uint32_t i = 0; i < 64; ++i) {
      const uint16_t cpu = kctx.smp.NextCpu();
      kctx.current_cpu = cpu;
      kctx.AnchorWindow();
      Prof::Window window(&kctx.prof, cpu, ProfDomain::kGate);
      const Cycles t0 = kernel.clock().now();
      ASSERT_TRUE(walker.Walk(*ctx, ">lib>s" + std::to_string(i % 4)).ok());
      kctx.smp.Accrue(cpu, kernel.clock().now() - t0);
    }
    ExpectLedgerBalanced(kernel);
    // A naming walk is gate + directory-read time, by construction.
    const auto totals = kernel.ctx().prof.DomainTotals();
    EXPECT_GT(totals[static_cast<size_t>(ProfDomain::kGate)], 0u);
    EXPECT_GT(totals[static_cast<size_t>(ProfDomain::kDirectoryRead)], 0u);
  }
}

TEST(ProfInvariant, FaultStormPopulatesTheExpectedDomains) {
  Kernel kernel{ProfConfigFor(4)};
  ASSERT_TRUE(kernel.Boot().ok());
  RunFaultStorm(kernel);
  const auto totals = kernel.ctx().prof.DomainTotals();
  EXPECT_GT(totals[static_cast<size_t>(ProfDomain::kDispatch)], 0u);
  EXPECT_GT(totals[static_cast<size_t>(ProfDomain::kUprocQuantum)], 0u);
  EXPECT_GT(totals[static_cast<size_t>(ProfDomain::kFaultService)], 0u);
  EXPECT_GT(totals[static_cast<size_t>(ProfDomain::kPagingIo)], 0u);
}

TEST(ProfDeterminism, CollapsedStacksAreBitIdenticalAcrossRuns) {
  std::string first;
  for (int run = 0; run < 2; ++run) {
    Kernel kernel{ProfConfigFor(4)};
    ASSERT_TRUE(kernel.Boot().ok());
    RunFaultStorm(kernel);
    const std::string folded = kernel.ctx().prof.CollapsedStacks();
    EXPECT_FALSE(folded.empty());
    if (run == 0) {
      first = folded;
    } else {
      EXPECT_EQ(first, folded);
    }
  }
}

// ---------------------------------------------------------------------------
// Off-mode invisibility: profiling may never change what the kernel does.
// ---------------------------------------------------------------------------

TEST(ProfInvisibility, EnablingTheProfilerChangesNoObservableState) {
  std::map<std::string, uint64_t, std::less<>> counters[2];
  Cycles clocks[2] = {0, 0};
  for (int on = 0; on < 2; ++on) {
    KernelConfig config = ProfConfigFor(4);
    config.profile.enabled = on == 1;
    config.profile.stall_rounds = on == 1 ? 10000 : 0;  // watchdog too
    Kernel kernel{config};
    ASSERT_TRUE(kernel.Boot().ok());
    RunFaultStorm(kernel);
    counters[on] = kernel.metrics().counters();
    clocks[on] = kernel.clock().now();
    EXPECT_TRUE(kernel.AuditIntegrity().empty());
  }
  EXPECT_EQ(counters[0], counters[1]);
  EXPECT_EQ(clocks[0], clocks[1]);
}

TEST(ProfInvisibility, ProfilerIsOffByDefault) {
  KernelFixture fx;
  ASSERT_TRUE(fx.boot_status.ok());
  EXPECT_FALSE(fx.kernel.ctx().prof.enabled());
  EXPECT_EQ(fx.kernel.ctx().prof.attributed(0), 0u);
}

// ---------------------------------------------------------------------------
// The stall watchdog: a never-released lock freezes the progress stamp.
// ---------------------------------------------------------------------------

TEST(ProfWatchdogDeathTest, FrozenClockDumpsAndAborts) {
  KernelConfig config;
  config.cpu_count = 1;
  config.vp_count = 4;
  config.profile.enabled = true;  // the dump includes domain trees
  config.profile.stall_rounds = 64;
  Kernel kernel{config};
  ASSERT_TRUE(kernel.Boot().ok());
  auto pid = kernel.processes().CreateProcess(TestSubject());
  ASSERT_TRUE(pid.ok());
  ProcContext* ctx = kernel.processes().Context(*pid);
  // The bug under test: a lock acquired once and never released, polled by a
  // kernel task that reports "work done" on every pass while the parked
  // process keeps the system from quiescing.  No quantum runs, no completion
  // lands, no process wakes — the progress stamp pins while the per-pass vp
  // bookkeeping keeps the raw clock creeping, which is why the watchdog keys
  // on the stamp and not the clock.
  SimSpinLock stall_lock;
  stall_lock.Acquire(0);
  ASSERT_TRUE(
      kernel.vprocs().BindKernelTask("staller", [&] { return stall_lock.held(); }).ok());
  auto ec = kernel.gates().CreateEventcount(*ctx, Label::SystemLow());
  ASSERT_TRUE(ec.ok());
  ASSERT_TRUE(kernel.processes()
                  .SetProgram(*pid, {UserOp::Await(*ec, 1)})  // never advanced
                  .ok());
  EXPECT_DEATH((void)kernel.processes().RunUntilQuiescent(100000), "STALL WATCHDOG");
}

}  // namespace
}  // namespace mks
