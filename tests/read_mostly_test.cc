// Tests for the read-mostly synchronization layer (PR 8): the per-policy
// spin/traffic arithmetic at the SimSharedLock unit level, knobs-off
// inertness, nested-section reentrancy, the exclusive@1cpu == off clock
// identity, and RelocateUid interleaved with concurrent lookups under each
// ReadPolicy — bit-identical on double runs at 4 and 16 CPUs.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/sync/shared_lock.h"
#include "tests/kernel_fixture.h"

namespace mks {
namespace {

// ---------------------------------------------------------------------------
// SimSharedLock unit level: what a read costs, what a write costs.
// ---------------------------------------------------------------------------

constexpr Cycles kLine = 100;
constexpr Cycles kGrace = 600;

SharedLockConfig Config(ReadPolicy policy, uint16_t cpus = 4) {
  return SharedLockConfig{policy, kLine, kGrace, cpus};
}

TEST(SharedLockUnit, OffIsFullyInert) {
  SimSharedLock lock;
  lock.Configure(Config(ReadPolicy::kOff));
  EXPECT_FALSE(lock.modeled());
  EXPECT_EQ(lock.AcquireRead(0, 0), 0u);
  lock.ReleaseRead(1000, 0);
  const auto grant = lock.AcquireWrite(0, 1);
  EXPECT_EQ(grant.total, 0u);
  lock.ReleaseWrite(2000);
  EXPECT_EQ(lock.AcquireRead(500, 2), 0u);  // no free point was ever recorded
  EXPECT_EQ(lock.read_grants(), 0u);
  EXPECT_EQ(lock.write_grants(), 0u);
  EXPECT_EQ(lock.read_spin_cycles(), 0u);
  EXPECT_EQ(lock.write_spin_cycles(), 0u);
}

TEST(SharedLockUnit, ExclusiveReadsWaitExactlyLikeWrites) {
  SimSharedLock lock;
  lock.Configure(Config(ReadPolicy::kExclusive));
  EXPECT_TRUE(lock.modeled());
  EXPECT_EQ(lock.AcquireRead(0, 0), 0u);
  lock.ReleaseRead(1000, 0);
  // A reader behind another reader's section burns the whole gap: the one
  // lock word does not distinguish the modes.
  EXPECT_EQ(lock.AcquireRead(0, 1), 1000u);
  lock.ReleaseRead(1200, 1);
  const auto grant = lock.AcquireWrite(500, 2);
  EXPECT_EQ(grant.total, 700u);  // the gap to 1200, no traffic terms
  EXPECT_EQ(grant.revocation_cycles, 0u);
  EXPECT_EQ(grant.publish_cycles, 0u);
  EXPECT_EQ(grant.grace_cycles, 0u);
  lock.ReleaseWrite(1400);
  EXPECT_EQ(lock.AcquireRead(1500, 3), 0u);  // arrived after the release
  EXPECT_EQ(lock.read_grants(), 3u);
  EXPECT_EQ(lock.contended_reads(), 1u);
  EXPECT_EQ(lock.read_spin_cycles(), 1000u);
  EXPECT_EQ(lock.write_grants(), 1u);
  EXPECT_EQ(lock.contended_writes(), 1u);
  EXPECT_EQ(lock.write_spin_cycles(), 700u);
}

TEST(SharedLockUnit, PassiveRwReadsAreFreeAndWritersRevokeRemoteTokens) {
  SimSharedLock lock;
  lock.Configure(Config(ReadPolicy::kPassiveRw));
  // Two overlapping readers on different CPUs: zero spin, zero traffic —
  // each spins only on its private token.
  EXPECT_EQ(lock.AcquireRead(0, 0), 0u);
  lock.ReleaseRead(1000, 0);
  EXPECT_EQ(lock.AcquireRead(0, 1), 0u);
  lock.ReleaseRead(800, 1);
  EXPECT_EQ(lock.contended_reads(), 0u);
  // The writer drains both token holders (to t=1000) and pays one line per
  // remote CPU revoked: total = (1000 - 200) wait + 2 * kLine traffic.
  const auto grant = lock.AcquireWrite(200, 2);
  EXPECT_EQ(grant.revoked_cpus, 2u);
  EXPECT_EQ(grant.revocation_cycles, 2 * kLine);
  EXPECT_EQ(grant.total, 800u + 2 * kLine);
  lock.ReleaseWrite(1100);
  // A reader that arrives under the writer's section waits only for the
  // section to end — still no line transfers.
  EXPECT_EQ(lock.AcquireRead(1050, 3), 50u);
  lock.ReleaseRead(1500, 3);
  // A writer whose own CPU holds the only token revokes nothing remotely.
  const auto own = lock.AcquireWrite(2000, 3);
  EXPECT_EQ(own.revoked_cpus, 0u);
  EXPECT_EQ(own.total, 0u);
  lock.ReleaseWrite(2100);
  EXPECT_EQ(lock.revoked_cpus(), 2u);
  EXPECT_EQ(lock.revocation_cycles(), 2 * kLine);
}

TEST(SharedLockUnit, EpochReadsPinFreeAndWritersPayPublishPlusGrace) {
  SimSharedLock lock;
  lock.Configure(Config(ReadPolicy::kEpoch));
  EXPECT_EQ(lock.AcquireRead(0, 0), 0u);
  lock.ReleaseRead(1000, 0);
  // Publish: one line to each of the 3 other CPUs.  Grace: drain the reader
  // that pinned the old epoch (to 1000) plus the quiescence machinery.
  const auto grant = lock.AcquireWrite(200, 1);
  EXPECT_EQ(grant.publish_cycles, 3 * kLine);
  EXPECT_EQ(grant.grace_cycles, 800u + kGrace);
  EXPECT_EQ(grant.total, 3 * kLine + 800u + kGrace);
  lock.ReleaseWrite(2000);
  // A reader against the in-flight writer is still free: it dereferences
  // the prior version.
  EXPECT_EQ(lock.AcquireRead(1900, 2), 0u);
  lock.ReleaseRead(2500, 2);
  // The next writer serializes behind the previous one and drains the new
  // read section.
  const auto next = lock.AcquireWrite(2100, 3);
  EXPECT_EQ(next.publish_cycles, 3 * kLine);
  EXPECT_EQ(next.grace_cycles, 400u + kGrace);
  EXPECT_EQ(next.total, 3 * kLine + 400u + kGrace);
  lock.ReleaseWrite(3000);
  EXPECT_EQ(lock.contended_reads(), 0u);
  EXPECT_EQ(lock.read_spin_cycles(), 0u);
  EXPECT_EQ(lock.grace_waits(), 2u);
  EXPECT_EQ(lock.publish_cycles(), 6 * kLine);
}

TEST(SharedLockUnit, GrantOrderNeverDependsOnThePolicy) {
  // The same three-section script under every modeled policy: sections start
  // in call order and each policy only changes what the waiting costs.
  for (ReadPolicy policy :
       {ReadPolicy::kExclusive, ReadPolicy::kPassiveRw, ReadPolicy::kEpoch}) {
    SCOPED_TRACE(ReadPolicyName(policy));
    SimSharedLock lock;
    lock.Configure(Config(policy));
    const Cycles r = lock.AcquireRead(0, 0);
    lock.ReleaseRead(r + 500, 0);
    const auto w = lock.AcquireWrite(100, 1);
    lock.ReleaseWrite(100 + w.total + 300);
    const Cycles r2 = lock.AcquireRead(200, 2);
    lock.ReleaseRead(200 + r2 + 100, 2);
    EXPECT_EQ(lock.read_grants(), 2u);
    EXPECT_EQ(lock.write_grants(), 1u);
  }
}

// ---------------------------------------------------------------------------
// Kernel level: inertness, reentrancy, and the 1-CPU clock identity.
// ---------------------------------------------------------------------------

TEST(ReadMostlyKernel, DefaultConfigKeepsTheLocksUnmodeled) {
  KernelFixture fx;
  ASSERT_TRUE(fx.boot_status.ok());
  fx.MustCreate(">a>b");
  PathWalker walker(&fx.kernel.gates());
  EXPECT_TRUE(walker.Walk(*fx.ctx, ">a>b").ok());
  const SimSharedLock& dir_lock = fx.kernel.directories().naming_lock();
  const SimSharedLock& kst_lock = fx.kernel.known_segments().kst_lock();
  EXPECT_FALSE(dir_lock.modeled());
  EXPECT_FALSE(kst_lock.modeled());
  // Not a single counter may move with the knob off.
  EXPECT_EQ(dir_lock.read_grants(), 0u);
  EXPECT_EQ(dir_lock.write_grants(), 0u);
  EXPECT_EQ(kst_lock.read_grants(), 0u);
  EXPECT_EQ(kst_lock.write_grants(), 0u);
  EXPECT_EQ(fx.kernel.metrics().counters().at("dir.read_sections"), 0u);
  EXPECT_EQ(fx.kernel.metrics().counters().at("ksm.write_sections"), 0u);
}

TEST(ReadMostlyKernel, NestedWriteSectionsAreInertNotDoubleCharged) {
  // DeleteEntry of a quota directory calls RemoveQuota inside its own write
  // section; the nested section must not take a second grant.
  KernelConfig config;
  config.read_policy = ReadPolicy::kExclusive;
  KernelFixture fx{config};
  ASSERT_TRUE(fx.boot_status.ok());
  PathWalker walker(&fx.kernel.gates());
  auto dir = walker.CreateDirectories(*fx.ctx, ">q", WorldAcl(), Label::SystemLow());
  ASSERT_TRUE(dir.ok());
  ASSERT_TRUE(fx.kernel.gates().SetQuota(*fx.ctx, *dir, 64).ok());
  const uint64_t before = fx.kernel.directories().naming_lock().write_grants();
  ASSERT_TRUE(fx.kernel.gates().Delete(*fx.ctx, fx.kernel.gates().RootId(), "q").ok());
  const uint64_t after = fx.kernel.directories().naming_lock().write_grants();
  EXPECT_EQ(after - before, 1u) << "nested RemoveQuota must ride the outer section";
}

// Shared relocation-storm driver: per-CPU processes all initiate one shared
// segment, then lookups (KST probe + directory search) interleave with
// RelocateUid calls across the pool, each op in its own anchored window on
// the furthest-behind CPU.
struct StormOut {
  Cycles clock = 0;
  std::map<std::string, uint64_t, std::less<>> counters;
  uint64_t read_grants = 0;
  uint64_t contended_reads = 0;
  Cycles read_spin_cycles = 0;
  uint64_t write_grants = 0;
  Cycles write_spin_cycles = 0;
  uint64_t revoked_cpus = 0;
  Cycles revocation_cycles = 0;
  Cycles publish_cycles = 0;
  uint64_t grace_waits = 0;
  Cycles grace_cycles = 0;
  std::vector<uint64_t> observed_packs;  // home.pack seen by each process at the end
  bool ok = false;

  bool BitIdentical(const StormOut& other) const {
    return clock == other.clock && counters == other.counters &&
           read_grants == other.read_grants && contended_reads == other.contended_reads &&
           read_spin_cycles == other.read_spin_cycles && write_grants == other.write_grants &&
           write_spin_cycles == other.write_spin_cycles &&
           revoked_cpus == other.revoked_cpus &&
           revocation_cycles == other.revocation_cycles &&
           publish_cycles == other.publish_cycles && grace_waits == other.grace_waits &&
           grace_cycles == other.grace_cycles && observed_packs == other.observed_packs;
  }
};

StormOut RunRelocationStorm(ReadPolicy policy, uint16_t cpus, uint32_t ops) {
  StormOut out;
  KernelConfig config;
  config.cpu_count = cpus;
  config.memory_frames = 128;
  config.connect_cost = 200;
  config.read_policy = policy;
  config.epoch_grace_cost = 300;
  Kernel kernel{config};
  if (!kernel.Boot().ok()) {
    return out;
  }
  KernelContext& kctx = kernel.ctx();
  PathWalker walker(&kernel.gates());
  std::vector<ProcessId> pids;
  std::vector<ProcContext*> procs;
  std::vector<Segno> segnos;
  for (uint16_t c = 0; c < cpus; ++c) {
    auto pid = kernel.processes().CreateProcess(TestSubject("U" + std::to_string(c)));
    if (!pid.ok()) {
      return out;
    }
    pids.push_back(*pid);
    procs.push_back(kernel.processes().Context(*pid));
  }
  auto entry = walker.CreateSegment(*procs[0], ">d>shared", WorldAcl(), Label::SystemLow());
  if (!entry.ok()) {
    return out;
  }
  for (uint16_t c = 0; c < cpus; ++c) {
    auto segno = walker.Initiate(*procs[c], ">d>shared");
    if (!segno.ok()) {
      return out;
    }
    segnos.push_back(*segno);
  }
  const auto* probe = kernel.known_segments().Lookup(pids[0], segnos[0]);
  if (probe == nullptr) {
    return out;
  }
  const SegmentUid uid = probe->home.uid;
  const PackId home_pack = probe->home.pack;
  const VtocIndex home_vtoc = probe->home.vtoc;

  // Barrier into the measured region (see bench_perf_name_storm.cc): local
  // clocks aligned and advanced to the global clock, so boot/setup release
  // points cannot read as contention against the measured windows.
  kctx.smp.AlignAll();
  if (kernel.clock().now() > kctx.smp.Makespan()) {
    kctx.smp.AdvanceAll(kernel.clock().now() - kctx.smp.Makespan());
  }
  const EntryId root = kernel.gates().RootId();
  for (uint32_t i = 0; i < ops; ++i) {
    const uint16_t cpu = kctx.smp.NextCpu();
    kctx.current_cpu = cpu;
    kctx.trace.SetCpu(cpu);
    kctx.AnchorWindow();
    const Cycles t0 = kernel.clock().now();
    if (i % 64 == 63) {
      // Bounce the shared segment between its real home and an alternate:
      // every KST binding in the system must follow.
      const bool alt = (i / 64) % 2 == 0;
      kernel.known_segments().RelocateUid(
          uid, alt ? PackId(home_pack.value + 1) : home_pack,
          alt ? VtocIndex(home_vtoc.value + 1) : home_vtoc);
    } else {
      if (kernel.known_segments().Lookup(pids[cpu], segnos[cpu]) == nullptr) {
        return out;
      }
      if (!kernel.gates().Search(*procs[cpu], root, "d").ok()) {
        return out;
      }
    }
    kctx.smp.Accrue(cpu, kernel.clock().now() - t0);
  }
  for (uint16_t c = 0; c < cpus; ++c) {
    const auto* e = kernel.known_segments().Lookup(pids[c], segnos[c]);
    if (e == nullptr) {
      return out;
    }
    out.observed_packs.push_back(e->home.pack.value);
  }
  out.clock = kernel.clock().now();
  out.counters = kernel.metrics().counters();
  for (const SimSharedLock* lock :
       {&kernel.directories().naming_lock(), &kernel.known_segments().kst_lock()}) {
    out.read_grants += lock->read_grants();
    out.contended_reads += lock->contended_reads();
    out.read_spin_cycles += lock->read_spin_cycles();
    out.write_grants += lock->write_grants();
    out.write_spin_cycles += lock->write_spin_cycles();
    out.revoked_cpus += lock->revoked_cpus();
    out.revocation_cycles += lock->revocation_cycles();
    out.publish_cycles += lock->publish_cycles();
    out.grace_waits += lock->grace_waits();
    out.grace_cycles += lock->grace_cycles();
  }
  out.ok = true;
  return out;
}

constexpr uint32_t kStormOps = 512;  // 8 relocations inside the storm

TEST(ReadMostlyRelocation, LookupsAlwaysSeeTheLatestHomeUnderEveryPolicy) {
  // 512 ops: the last relocation (op 447, i/64 == 6) moved the segment to
  // the alternate pack; every process's KST binding must say so.
  for (ReadPolicy policy : {ReadPolicy::kOff, ReadPolicy::kExclusive, ReadPolicy::kPassiveRw,
                            ReadPolicy::kEpoch}) {
    SCOPED_TRACE(ReadPolicyName(policy));
    const StormOut r = RunRelocationStorm(policy, 4, kStormOps);
    ASSERT_TRUE(r.ok);
    ASSERT_EQ(r.observed_packs.size(), 4u);
    for (uint64_t pack : r.observed_packs) {
      EXPECT_EQ(pack, r.observed_packs[0]);
    }
  }
}

TEST(ReadMostlyRelocation, PoliciesPriceTheScheduleWithoutChangingIt) {
  // Identical grant order across policies: what each process observes is
  // policy-independent; only the clock and the lock counters differ — and in
  // the direction each policy promises.
  const StormOut off = RunRelocationStorm(ReadPolicy::kOff, 4, kStormOps);
  const StormOut excl = RunRelocationStorm(ReadPolicy::kExclusive, 4, kStormOps);
  const StormOut prw = RunRelocationStorm(ReadPolicy::kPassiveRw, 4, kStormOps);
  const StormOut epoch = RunRelocationStorm(ReadPolicy::kEpoch, 4, kStormOps);
  ASSERT_TRUE(off.ok);
  ASSERT_TRUE(excl.ok);
  ASSERT_TRUE(prw.ok);
  ASSERT_TRUE(epoch.ok);
  EXPECT_EQ(off.observed_packs, excl.observed_packs);
  EXPECT_EQ(off.observed_packs, prw.observed_packs);
  EXPECT_EQ(off.observed_packs, epoch.observed_packs);
  // Off records nothing at all.
  EXPECT_EQ(off.read_grants, 0u);
  EXPECT_EQ(off.write_grants, 0u);
  // The modeled policies all saw the same sections.
  EXPECT_EQ(excl.read_grants, prw.read_grants);
  EXPECT_EQ(excl.read_grants, epoch.read_grants);
  EXPECT_EQ(excl.write_grants, prw.write_grants);
  // Exclusive makes readers contend; passive_rw readers never pay lines
  // (their only waits are writer sections); epoch readers never wait at all.
  EXPECT_GT(excl.contended_reads, prw.contended_reads);
  EXPECT_EQ(epoch.contended_reads, 0u);
  EXPECT_EQ(epoch.read_spin_cycles, 0u);
  // The writers' traffic terms appear exactly where the model puts them.
  EXPECT_EQ(excl.revocation_cycles, 0u);
  EXPECT_GT(prw.revoked_cpus, 0u);
  EXPECT_EQ(prw.revocation_cycles, prw.revoked_cpus * 200u);
  EXPECT_GT(epoch.publish_cycles, 0u);
  EXPECT_GT(epoch.grace_waits, 0u);
}

TEST(ReadMostlyRelocation, ExclusiveAtOneCpuIsClockIdenticalToOff) {
  // At 1 CPU the anchored windows make spin structurally zero and exclusive
  // charges nothing: the virtual clock (and what the process observed) must
  // match the un-modeled run exactly.
  const StormOut off = RunRelocationStorm(ReadPolicy::kOff, 1, kStormOps);
  const StormOut excl = RunRelocationStorm(ReadPolicy::kExclusive, 1, kStormOps);
  ASSERT_TRUE(off.ok);
  ASSERT_TRUE(excl.ok);
  EXPECT_EQ(off.clock, excl.clock);
  EXPECT_EQ(off.observed_packs, excl.observed_packs);
  EXPECT_EQ(excl.read_spin_cycles, 0u);
  EXPECT_EQ(excl.write_spin_cycles, 0u);
}

TEST(ReadMostlyRelocation, DoubleRunsAreBitIdenticalAtFourAndSixteenCpus) {
  for (ReadPolicy policy :
       {ReadPolicy::kExclusive, ReadPolicy::kPassiveRw, ReadPolicy::kEpoch}) {
    for (uint16_t cpus : {uint16_t{4}, uint16_t{16}}) {
      SCOPED_TRACE(std::string(ReadPolicyName(policy)) + " @ " + std::to_string(cpus));
      const StormOut a = RunRelocationStorm(policy, cpus, kStormOps);
      const StormOut b = RunRelocationStorm(policy, cpus, kStormOps);
      ASSERT_TRUE(a.ok);
      ASSERT_TRUE(b.ok);
      EXPECT_TRUE(a.BitIdentical(b));
    }
  }
}

}  // namespace
}  // namespace mks
