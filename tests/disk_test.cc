// Tests for disk volume control: packs, records, VTOCs, placement.
#include <gtest/gtest.h>

#include "src/disk/pack.h"

namespace mks {
namespace {

struct DiskFixture {
  Clock clock;
  CostModel cost{&clock};
  Metrics metrics;
  VolumeControl volumes{&cost, &metrics};
};

TEST(Disk, AllocateAndFreeRecords) {
  DiskFixture fx;
  const PackId id = fx.volumes.AddPack(8, 4);
  DiskPack* pack = fx.volumes.pack(id);
  EXPECT_EQ(pack->free_records(), 8u);
  auto r1 = pack->AllocateRecord();
  auto r2 = pack->AllocateRecord();
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_NE(r1->value, r2->value);
  EXPECT_EQ(pack->free_records(), 6u);
  pack->FreeRecord(*r1);
  EXPECT_EQ(pack->free_records(), 7u);
}

TEST(Disk, PackFullWhenExhausted) {
  DiskFixture fx;
  const PackId id = fx.volumes.AddPack(3, 4);
  DiskPack* pack = fx.volumes.pack(id);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(pack->AllocateRecord().ok());
  }
  EXPECT_EQ(pack->AllocateRecord().code(), Code::kPackFull);
  EXPECT_GT(fx.metrics.Get("disk.pack_full"), 0u);
}

TEST(Disk, RecordIoRoundTripAndLatency) {
  DiskFixture fx;
  const PackId id = fx.volumes.AddPack(4, 4);
  DiskPack* pack = fx.volumes.pack(id);
  auto rec = pack->AllocateRecord();
  ASSERT_TRUE(rec.ok());
  std::vector<Word> out(kPageWords, 0);
  std::vector<Word> in(kPageWords, 0);
  in[0] = 11;
  in[kPageWords - 1] = 99;
  const Cycles before = fx.clock.now();
  pack->WriteRecord(*rec, in);
  pack->ReadRecord(*rec, out);
  EXPECT_GE(fx.clock.now() - before, Costs::kDiskReadLatency + Costs::kDiskWriteLatency);
  EXPECT_EQ(out[0], 11u);
  EXPECT_EQ(out[kPageWords - 1], 99u);
}

TEST(Disk, UnwrittenRecordReadsZero) {
  DiskFixture fx;
  const PackId id = fx.volumes.AddPack(4, 4);
  auto rec = fx.volumes.pack(id)->AllocateRecord();
  ASSERT_TRUE(rec.ok());
  std::vector<Word> out(kPageWords, 1);
  fx.volumes.pack(id)->ReadRecord(*rec, out);
  for (Word w : out) {
    ASSERT_EQ(w, 0u);
  }
}

TEST(Disk, VtocLifecycleFreesRecords) {
  DiskFixture fx;
  const PackId id = fx.volumes.AddPack(8, 4);
  DiskPack* pack = fx.volumes.pack(id);
  auto vtoc = pack->AllocateVtoc(SegmentUid(77), false);
  ASSERT_TRUE(vtoc.ok());
  VtocEntry* entry = pack->GetVtoc(*vtoc);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->uid.value, 77u);
  auto rec = pack->AllocateRecord();
  ASSERT_TRUE(rec.ok());
  entry->file_map[0].allocated = true;
  entry->file_map[0].record = *rec;
  EXPECT_EQ(entry->RecordsUsed(), 1u);
  EXPECT_EQ(pack->free_records(), 7u);
  pack->FreeVtoc(*vtoc);
  EXPECT_EQ(pack->free_records(), 8u);
  EXPECT_EQ(pack->GetVtoc(*vtoc), nullptr);
}

TEST(Disk, VtocSlotsExhaust) {
  DiskFixture fx;
  const PackId id = fx.volumes.AddPack(8, 2);
  DiskPack* pack = fx.volumes.pack(id);
  ASSERT_TRUE(pack->AllocateVtoc(SegmentUid(1), false).ok());
  ASSERT_TRUE(pack->AllocateVtoc(SegmentUid(2), false).ok());
  EXPECT_EQ(pack->AllocateVtoc(SegmentUid(3), false).code(), Code::kNoVtocSlot);
}

TEST(Disk, ChoosePackPrefersEmptiest) {
  DiskFixture fx;
  const PackId a = fx.volumes.AddPack(8, 4);
  const PackId b = fx.volumes.AddPack(8, 4);
  // Drain pack a.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(fx.volumes.pack(a)->AllocateRecord().ok());
  }
  auto chosen = fx.volumes.ChoosePack();
  ASSERT_TRUE(chosen.ok());
  EXPECT_EQ(chosen->value, b.value);
}

TEST(Disk, ChoosePackExcludingNeedsHeadroom) {
  DiskFixture fx;
  const PackId a = fx.volumes.AddPack(8, 4);
  const PackId b = fx.volumes.AddPack(4, 4);
  auto ok = fx.volumes.ChoosePackExcluding(a, 4);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->value, b.value);
  EXPECT_EQ(fx.volumes.ChoosePackExcluding(a, 5).code(), Code::kPackFull);
  EXPECT_EQ(fx.volumes.ChoosePackExcluding(b, 9).code(), Code::kPackFull);
}

TEST(Disk, CopyAndStoreSkipLatency) {
  DiskFixture fx;
  const PackId id = fx.volumes.AddPack(4, 4);
  DiskPack* pack = fx.volumes.pack(id);
  auto rec = pack->AllocateRecord();
  ASSERT_TRUE(rec.ok());
  std::vector<Word> in(kPageWords, 5);
  const Cycles before = fx.clock.now();
  pack->StoreRecord(*rec, in);
  std::vector<Word> out(kPageWords, 0);
  pack->CopyRecord(*rec, out);
  EXPECT_EQ(fx.clock.now(), before);  // no latency charged
  EXPECT_EQ(out[100], 5u);
}

}  // namespace
}  // namespace mks
