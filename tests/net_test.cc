// Tests for the network subsystem: the in-kernel per-network handlers and
// the generic demultiplexer + user-domain protocol configuration must agree
// on protocol outcomes; only the structure (and cost) differs.
#include <gtest/gtest.h>

#include "src/net/demux.h"

namespace mks {
namespace {

struct NetFixture {
  Clock clock;
  CostModel cost{&clock};
  Metrics metrics;
};

Frame DataFrame(uint16_t sub, uint32_t seq, std::vector<Word> payload) {
  Frame f;
  f.subchannel = SubchannelId(sub);
  f.type = frame_type::kData;
  f.seq = seq;
  f.payload = std::move(payload);
  return f;
}

TEST(NetBaseline, OrderedDeliveryAndAcks) {
  NetFixture fx;
  MultiplexedChannel arpanet(ChannelId(0), "arpanet");
  InKernelNetworkStack stack(&fx.cost, &fx.metrics);
  stack.AttachArpanet(&arpanet);
  arpanet.Inject(DataFrame(3, 0, {1}));
  arpanet.Inject(DataFrame(3, 1, {2}));
  arpanet.Inject(DataFrame(3, 3, {9}));  // out of order: dropped
  EXPECT_EQ(stack.PumpAll(), 3u);
  auto f0 = stack.ReceiveArpanet(SubchannelId(3));
  auto f1 = stack.ReceiveArpanet(SubchannelId(3));
  auto f2 = stack.ReceiveArpanet(SubchannelId(3));
  ASSERT_TRUE(f0.has_value());
  ASSERT_TRUE(f1.has_value());
  EXPECT_FALSE(f2.has_value());
  EXPECT_EQ(stack.acks_sent().size(), 2u);
  EXPECT_EQ(fx.metrics.Get("net.out_of_order"), 1u);
}

TEST(NetBaseline, TerminalLinesAssembleAndEcho) {
  NetFixture fx;
  MultiplexedChannel fep(ChannelId(1), "front_end");
  InKernelNetworkStack stack(&fx.cost, &fx.metrics);
  stack.AttachFrontEnd(&fep);
  Frame f;
  f.subchannel = SubchannelId(7);
  f.type = frame_type::kData;
  for (char c : std::string("ls\nwho\n")) {
    f.payload.push_back(static_cast<Word>(c));
  }
  fep.Inject(f);
  stack.PumpAll();
  auto line1 = stack.ReadTerminalLine(SubchannelId(7));
  auto line2 = stack.ReadTerminalLine(SubchannelId(7));
  ASSERT_TRUE(line1.has_value());
  ASSERT_TRUE(line2.has_value());
  EXPECT_EQ(*line1, "ls");
  EXPECT_EQ(*line2, "who");
}

TEST(NetDemux, RoutesWithoutInterpretingAndUserProtocolAgrees) {
  NetFixture fx;
  MultiplexedChannel arpanet(ChannelId(0), "arpanet");
  GenericDemux demux(&fx.cost, &fx.metrics);
  demux.AttachChannel(&arpanet);
  NcpProtocolUser ncp(&fx.cost, &fx.metrics, &demux, ChannelId(0));

  arpanet.Inject(DataFrame(3, 0, {1}));
  arpanet.Inject(DataFrame(3, 1, {2}));
  arpanet.Inject(DataFrame(3, 3, {9}));
  EXPECT_EQ(demux.Pump(), 3u);
  EXPECT_EQ(ncp.PumpSubchannel(SubchannelId(3)), 3u);
  ASSERT_TRUE(ncp.Receive(SubchannelId(3)).has_value());
  ASSERT_TRUE(ncp.Receive(SubchannelId(3)).has_value());
  EXPECT_FALSE(ncp.Receive(SubchannelId(3)).has_value());
  EXPECT_EQ(ncp.acks_sent().size(), 2u);
}

TEST(NetDemux, TerminalProtocolInUserDomain) {
  NetFixture fx;
  MultiplexedChannel fep(ChannelId(1), "front_end");
  GenericDemux demux(&fx.cost, &fx.metrics);
  demux.AttachChannel(&fep);
  TerminalProtocolUser terminal(&fx.cost, &fx.metrics, &demux, ChannelId(1));
  Frame f;
  f.subchannel = SubchannelId(2);
  for (char c : std::string("print notes\n")) {
    f.payload.push_back(static_cast<Word>(c));
  }
  fep.Inject(f);
  demux.Pump();
  terminal.PumpLine(SubchannelId(2));
  auto line = terminal.ReadLine(SubchannelId(2));
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(*line, "print notes");
}

TEST(NetDemux, BoundedQueuesDropUnderOverload) {
  NetFixture fx;
  MultiplexedChannel arpanet(ChannelId(0), "arpanet");
  GenericDemux demux(&fx.cost, &fx.metrics, /*queue_capacity=*/4);
  demux.AttachChannel(&arpanet);
  for (uint32_t i = 0; i < 10; ++i) {
    arpanet.Inject(DataFrame(1, i, {i}));
  }
  demux.Pump();
  EXPECT_EQ(demux.dropped(), 6u);
}

TEST(NetDemux, AttachingAThirdNetworkIsJustARegistration) {
  NetFixture fx;
  MultiplexedChannel a(ChannelId(0), "arpanet");
  MultiplexedChannel b(ChannelId(1), "front_end");
  MultiplexedChannel c(ChannelId(2), "third_net");
  GenericDemux demux(&fx.cost, &fx.metrics);
  demux.AttachChannel(&a);
  demux.AttachChannel(&b);
  demux.AttachChannel(&c);
  EXPECT_EQ(demux.attached_networks(), 3u);
  c.Inject(DataFrame(0, 0, {1}));
  EXPECT_EQ(demux.Pump(), 1u);
  // The same frame is readable through the one generic gate.
  EXPECT_TRUE(demux.ReadSubchannel(ChannelId(2), SubchannelId(0)).has_value());
}

TEST(Net, BothConfigurationsDeliverTheSamePayloads) {
  NetFixture fx;
  TrafficGenerator gen(99, 4);
  std::vector<Frame> trace;
  for (int i = 0; i < 200; ++i) {
    trace.push_back(gen.NextFrame());
  }

  // Baseline.
  MultiplexedChannel wire1(ChannelId(0), "arpanet");
  InKernelNetworkStack stack(&fx.cost, &fx.metrics);
  stack.AttachArpanet(&wire1);
  for (const Frame& f : trace) {
    wire1.Inject(f);
  }
  stack.PumpAll();

  // New design.
  MultiplexedChannel wire2(ChannelId(0), "arpanet");
  GenericDemux demux(&fx.cost, &fx.metrics, /*queue_capacity=*/512);
  demux.AttachChannel(&wire2);
  NcpProtocolUser ncp(&fx.cost, &fx.metrics, &demux, ChannelId(0));
  for (const Frame& f : trace) {
    wire2.Inject(f);
  }
  demux.Pump();
  for (uint16_t sub = 0; sub < 4; ++sub) {
    ncp.PumpSubchannel(SubchannelId(sub));
  }

  for (uint16_t sub = 0; sub < 4; ++sub) {
    while (true) {
      auto from_kernel = stack.ReceiveArpanet(SubchannelId(sub));
      auto from_user = ncp.Receive(SubchannelId(sub));
      ASSERT_EQ(from_kernel.has_value(), from_user.has_value()) << "sub " << sub;
      if (!from_kernel.has_value()) {
        break;
      }
      EXPECT_EQ(from_kernel->seq, from_user->seq);
      EXPECT_EQ(from_kernel->payload, from_user->payload);
    }
  }
}

}  // namespace
}  // namespace mks
