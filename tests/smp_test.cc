// Tests for the simulated CPU pool: deterministic interleaving, the per-CPU
// hardware state (associative memories, DSBRs, the wakeup-waiting switch),
// and the broadcast invalidation protocol.
//
// The two load-bearing properties:
//  * determinism — the interleaving is a function of the workload alone, so
//    two runs with the same KernelConfig produce bit-identical metrics,
//    audits, and clocks even at cpu_count > 1;
//  * functional transparency — the pool changes only the accounting overlay
//    (local clocks, makespan), never what the kernel computes, so any
//    cpu_count yields the same stored values and a clean integrity audit.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/hw/machine.h"
#include "tests/kernel_fixture.h"

namespace mks {
namespace {

// ---------------------------------------------------------------------------
// Kernel-level: determinism and equivalence under the pool.
// ---------------------------------------------------------------------------

struct MixedRun {
  std::map<std::string, uint64_t, std::less<>> counters;
  std::vector<std::string> audit;
  Cycles clock = 0;
  std::vector<Word> values;  // one read-back word per process
  bool ok = false;
};

// Boots a kernel, runs the mixed workload (compute + paged writes across
// several processes, working set larger than memory so eviction and — when
// enabled — the paging pipeline engage), and snapshots everything observable.
MixedRun RunMixed(const KernelConfig& config, uint32_t processes = 6) {
  MixedRun out;
  Kernel kernel{config};
  if (!kernel.Boot().ok()) {
    return out;
  }
  PathWalker walker(&kernel.gates());
  std::vector<ProcessId> pids;
  std::vector<Segno> segnos;
  for (uint32_t i = 0; i < processes; ++i) {
    auto pid = kernel.processes().CreateProcess(TestSubject("U" + std::to_string(i)));
    if (!pid.ok()) {
      return out;
    }
    ProcContext* ctx = kernel.processes().Context(*pid);
    auto entry = walker.CreateSegment(*ctx, ">work>p" + std::to_string(i), WorldAcl(),
                                      Label::SystemLow());
    if (!entry.ok()) {
      return out;
    }
    auto segno = kernel.gates().Initiate(*ctx, *entry);
    if (!segno.ok()) {
      return out;
    }
    std::vector<UserOp> program;
    for (uint32_t n = 0; n < 60; ++n) {
      if (n % 3 == 0) {
        program.push_back(UserOp::Compute(25));
      } else {
        program.push_back(UserOp::Write(*segno, (n % 10) * kPageWords + n, n * 7 + i));
      }
    }
    if (!kernel.processes().SetProgram(*pid, std::move(program)).ok()) {
      return out;
    }
    pids.push_back(*pid);
    segnos.push_back(*segno);
  }
  if (!kernel.processes().RunUntilQuiescent(1000000).ok()) {
    return out;
  }
  for (uint32_t i = 0; i < processes; ++i) {
    // Op n=59 is the last write each process makes: offset (59%10)*kPageWords+59.
    auto word = kernel.gates().Read(*kernel.processes().Context(pids[i]), segnos[i],
                                    9 * kPageWords + 59);
    if (!word.ok()) {
      return out;
    }
    out.values.push_back(*word);
  }
  out.audit = kernel.AuditIntegrity();
  out.counters = kernel.metrics().counters();
  out.clock = kernel.clock().now();
  out.ok = true;
  return out;
}

KernelConfig SmpConfig(uint16_t cpus) {
  KernelConfig config;
  config.cpu_count = cpus;
  config.memory_frames = 48;  // 6 procs x 10 pages = 60 > 48: eviction pressure
  config.vp_count = 6;
  return config;
}

TEST(SmpDeterminism, TwoRunsAtFourCpusAreBitIdentical) {
  KernelConfig config = SmpConfig(4);
  config.paging_pipeline = PagingPipeline::Full();
  const MixedRun a = RunMixed(config);
  const MixedRun b = RunMixed(config);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  // The full metrics dump — every counter, including the per-CPU
  // smp.cpuK.busy_cycles/quanta — must match exactly, as must the audit
  // report and the global clock.  Any divergence means the interleaving
  // consulted something outside the simulation.
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.audit, b.audit);
  EXPECT_EQ(a.clock, b.clock);
  EXPECT_EQ(a.values, b.values);
}

TEST(SmpEquivalence, CpuCountNeverChangesWhatTheKernelComputes) {
  const MixedRun uni = RunMixed(SmpConfig(1));
  const MixedRun smp = RunMixed(SmpConfig(4));
  ASSERT_TRUE(uni.ok);
  ASSERT_TRUE(smp.ok);
  // Same stored values, clean audits on both.  (The serialized totals also
  // agree because the pool is an accounting overlay over one global clock.)
  EXPECT_EQ(uni.values, smp.values);
  EXPECT_TRUE(uni.audit.empty()) << uni.audit.front();
  EXPECT_TRUE(smp.audit.empty()) << smp.audit.front();
  EXPECT_EQ(uni.clock, smp.clock);
}

TEST(SmpAudit, AuditAndShutdownWithPipelineKnobsAtFourCpus) {
  KernelConfig config = SmpConfig(4);
  config.paging_pipeline = PagingPipeline::Full();
  Kernel kernel{config};
  ASSERT_TRUE(kernel.Boot().ok());
  PathWalker walker(&kernel.gates());
  std::vector<ProcessId> pids;
  for (uint32_t i = 0; i < 6; ++i) {
    auto pid = kernel.processes().CreateProcess(TestSubject("W" + std::to_string(i)));
    ASSERT_TRUE(pid.ok());
    ProcContext* ctx = kernel.processes().Context(*pid);
    auto entry = walker.CreateSegment(*ctx, ">work>q" + std::to_string(i), WorldAcl(),
                                      Label::SystemLow());
    ASSERT_TRUE(entry.ok());
    auto segno = kernel.gates().Initiate(*ctx, *entry);
    ASSERT_TRUE(segno.ok());
    std::vector<UserOp> program;
    for (uint32_t p = 0; p < 8; ++p) {  // sequential: feeds the readahead path
      program.push_back(UserOp::Write(*segno, p * kPageWords + p, p + 1));
    }
    ASSERT_TRUE(kernel.processes().SetProgram(*pid, std::move(program)).ok());
    pids.push_back(*pid);
  }
  ASSERT_TRUE(kernel.processes().RunUntilQuiescent(1000000).ok());
  for (ProcessId pid : pids) {
    EXPECT_EQ(kernel.processes().state(pid), ProcState::kDone);
  }
  // The pipeline ran (eviction pressure guarantees cleaning activity) and the
  // cross-module books still balance with four CPUs' worth of interleaving.
  const auto findings = kernel.AuditIntegrity();
  EXPECT_TRUE(findings.empty()) << findings.front();
  ASSERT_TRUE(kernel.Shutdown().ok());
  const auto post = kernel.AuditIntegrity();
  EXPECT_TRUE(post.empty()) << post.front();
}

TEST(SmpDispatch, QuantaSpreadAcrossThePool) {
  KernelConfig config = SmpConfig(4);
  Kernel kernel{config};
  ASSERT_TRUE(kernel.Boot().ok());
  kernel.processes().set_quantum(4);  // several quanta per program
  PathWalker walker(&kernel.gates());
  for (uint32_t i = 0; i < 8; ++i) {
    auto pid = kernel.processes().CreateProcess(TestSubject("S" + std::to_string(i)));
    ASSERT_TRUE(pid.ok());
    ProcContext* ctx = kernel.processes().Context(*pid);
    auto entry = walker.CreateSegment(*ctx, ">work>s" + std::to_string(i), WorldAcl(),
                                      Label::SystemLow());
    ASSERT_TRUE(entry.ok());
    auto segno = kernel.gates().Initiate(*ctx, *entry);
    ASSERT_TRUE(segno.ok());
    std::vector<UserOp> program;
    for (uint32_t n = 0; n < 24; ++n) {
      program.push_back(UserOp::Compute(30));
      program.push_back(UserOp::Write(*segno, (n % 3) * kPageWords, n));
    }
    ASSERT_TRUE(kernel.processes().SetProgram(*pid, std::move(program)).ok());
  }
  ASSERT_TRUE(kernel.processes().RunUntilQuiescent(1000000).ok());
  // With 8 runnable processes and 4 CPUs, least-local-time dispatch must use
  // more than the bootload CPU.
  uint32_t busy_cpus = 0;
  for (uint16_t k = 0; k < 4; ++k) {
    const std::string prefix = "smp.cpu" + std::to_string(k);
    if (kernel.metrics().Get(prefix + ".busy_cycles") > 0) {
      EXPECT_GT(kernel.metrics().Get(prefix + ".quanta"), 0u);
      ++busy_cpus;
    }
  }
  EXPECT_GE(busy_cpus, 2u);
  // Every CPU's busy time is bounded by the serialized total.
  for (uint16_t k = 0; k < 4; ++k) {
    EXPECT_LE(kernel.metrics().Get("smp.cpu" + std::to_string(k) + ".busy_cycles"),
              kernel.clock().now());
  }
}

// ---------------------------------------------------------------------------
// Hardware-level: the pool's broadcast protocol and per-CPU state.
// ---------------------------------------------------------------------------

struct PoolRig {
  Clock clock;
  CostModel cost{&clock};
  Metrics metrics;
  PageTable pt;
  DescriptorSegment ds;
  ProcessorPool pool;

  explicit PoolRig(uint16_t cpus)
      : pool(cpus,
             HwFeatures{.second_dsbr = true,
                        .associative_memory = true,
                        .associative_entries = 16},
             &cost, &metrics) {
    pt.ptws.assign(8, Ptw{});
    ds.sdws.assign(4, Sdw{});
    Sdw& sdw = ds.sdws[0];
    sdw.present = true;
    sdw.page_table = &pt;
    sdw.bound_pages = 8;
    sdw.read = true;
    sdw.write = true;
    sdw.ring_bracket = 4;
    for (uint16_t k = 0; k < pool.count(); ++k) {
      pool.cpu(k).set_user_ds(&ds);
    }
  }

  void MapPage(uint32_t page, uint32_t frame) {
    pt.ptws[page].in_core = true;
    pt.ptws[page].unallocated = false;
    pt.ptws[page].frame = frame;
  }
};

constexpr Segno kSeg{kSystemSegnoLimit};

TEST(ProcessorPool, ZeroCpuCountClampsToOne) {
  PoolRig rig(0);
  EXPECT_EQ(rig.pool.count(), 1u);
}

TEST(ProcessorPool, BroadcastClearDropsStaleTranslationsOnEveryCpu) {
  PoolRig rig(2);
  rig.MapPage(5, 13);
  // Both CPUs cache the translation for page 5.
  ASSERT_TRUE(rig.pool.cpu(0).Access(kSeg, 5 * kPageWords, AccessMode::kRead, 4).ok);
  ASSERT_TRUE(rig.pool.cpu(1).Access(kSeg, 5 * kPageWords, AccessMode::kRead, 4).ok);
  // A descriptor mutation made while running on CPU 0 (bound shrink) must
  // reach CPU 1's cache too — the hardware "connect" signal.
  rig.ds.sdws[0].bound_pages = 4;
  rig.pool.ClearAssociative(kSeg);
  for (uint16_t k = 0; k < 2; ++k) {
    auto r = rig.pool.cpu(k).Access(kSeg, 5 * kPageWords, AccessMode::kRead, 4);
    ASSERT_FALSE(r.ok) << "cpu " << k << " served a stale translation";
    EXPECT_EQ(r.fault.kind, FaultKind::kOutOfBounds);
  }
}

TEST(ProcessorPool, BroadcastPtwInvalidationCoversEviction) {
  PoolRig rig(2);
  rig.MapPage(2, 9);
  ASSERT_TRUE(rig.pool.cpu(0).Access(kSeg, 2 * kPageWords, AccessMode::kRead, 4).ok);
  ASSERT_TRUE(rig.pool.cpu(1).Access(kSeg, 2 * kPageWords, AccessMode::kRead, 4).ok);
  // Page control (running on some CPU) evicts the page.
  rig.pt.ptws[2].in_core = false;
  rig.pt.ptws[2].frame = 0;
  rig.pool.InvalidateAssociative(&rig.pt.ptws[2]);
  for (uint16_t k = 0; k < 2; ++k) {
    auto r = rig.pool.cpu(k).Access(kSeg, 2 * kPageWords, AccessMode::kRead, 4);
    ASSERT_FALSE(r.ok);
    EXPECT_EQ(r.fault.kind, FaultKind::kMissingPage);
  }
}

TEST(ProcessorPool, WakeupWaitingSwitchIsPerCpu) {
  PoolRig rig(2);
  rig.pool.cpu(0).ArmWakeupWaiting();
  rig.pool.cpu(1).ArmWakeupWaiting();
  // A notification delivered to the vp bound on CPU 0 flips only that CPU's
  // switch; CPU 1's pending wait decision is unaffected.
  rig.pool.cpu(0).SetWakeupWaiting();
  EXPECT_TRUE(rig.pool.cpu(0).wakeup_waiting());
  EXPECT_FALSE(rig.pool.cpu(1).wakeup_waiting());
}

TEST(ProcessorPool, DropUserDsClearsOnlyMatchingDsbrs) {
  PoolRig rig(2);
  DescriptorSegment other;
  other.sdws.assign(1, Sdw{});
  rig.pool.cpu(1).set_user_ds(&other);
  // Tearing down the address space behind `ds` must unlatch CPU 0's DSBR but
  // leave CPU 1 (running a different space) alone.
  rig.pool.DropUserDs(&rig.ds);
  EXPECT_EQ(rig.pool.cpu(0).user_ds(), nullptr);
  EXPECT_EQ(rig.pool.cpu(1).user_ds(), &other);
}

}  // namespace
}  // namespace mks
