// Tests for the flattened simulator core (the host-throughput refactor).
//
// The refactor's contract is byte-identical virtual-time output: the
// tournament-tree dispatcher, the pooled event queue, and the lazy page fill
// are host-side reorganizations only.  Three layers of evidence:
//  * unit — the O(1) min-structure agrees with a reference linear scan under
//    arbitrary Accrue/AdvanceAll/AlignAll/masked-query sequences (the
//    reference IS the old dispatcher, so this is old-vs-new selection);
//  * unit — the pooled event queue keeps FIFO tie-break order, survives
//    closures past the inline buffer, and recycles slots;
//  * end-to-end — double runs of the P11/P12/P13 workload shapes at 1, 4,
//    and 16 CPUs produce byte-identical counter snapshots and trace exports.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "src/sim/cpu_sched.h"
#include "src/sim/event_queue.h"
#include "src/sim/metrics.h"
#include "src/sim/trace.h"
#include "tests/kernel_fixture.h"

namespace mks {
namespace {

// ---------------------------------------------------------------------------
// CpuInterleave: tournament tree vs the reference linear scan.
// ---------------------------------------------------------------------------

// The pre-refactor dispatcher: per-CPU absolute clocks, linear scans.
struct ReferenceInterleave {
  explicit ReferenceInterleave(uint16_t n) : locals(n, 0) {}

  uint16_t NextCpu() const {
    uint16_t best = 0;
    for (uint16_t k = 1; k < locals.size(); ++k) {
      if (locals[k] < locals[best]) {
        best = k;
      }
    }
    return best;
  }
  uint16_t NextCpuIn(uint32_t mask) const {
    uint16_t best = UINT16_MAX;
    for (uint16_t k = 0; k < locals.size(); ++k) {
      if (((mask >> k) & 1u) == 0) {
        continue;
      }
      if (best == UINT16_MAX || locals[k] < locals[best]) {
        best = k;
      }
    }
    return best;
  }
  void Accrue(uint16_t cpu, Cycles delta) { locals[cpu] += delta; }
  void AdvanceAll(Cycles delta) {
    for (Cycles& c : locals) {
      c += delta;
    }
  }
  void AlignAll() {
    const Cycles m = Makespan();
    for (Cycles& c : locals) {
      c = m;
    }
  }
  Cycles Makespan() const {
    Cycles m = 0;
    for (Cycles c : locals) {
      m = std::max(m, c);
    }
    return m;
  }

  std::vector<Cycles> locals;
};

void ExpectAgreement(const CpuInterleave& tree, const ReferenceInterleave& ref,
                     uint32_t some_mask) {
  ASSERT_EQ(tree.count(), ref.locals.size());
  EXPECT_EQ(tree.NextCpu(), ref.NextCpu());
  EXPECT_EQ(tree.Makespan(), ref.Makespan());
  for (uint16_t k = 0; k < tree.count(); ++k) {
    EXPECT_EQ(tree.local_now(k), ref.locals[k]) << "cpu " << k;
  }
  const uint32_t pool = tree.count() >= 32 ? ~0u : (1u << tree.count()) - 1u;
  if ((some_mask & pool) != 0) {
    EXPECT_EQ(tree.NextCpuIn(some_mask), ref.NextCpuIn(some_mask & pool));
  }
}

TEST(CpuInterleaveTree, MatchesReferenceScanUnderMixedOps) {
  for (uint16_t cpus : {1, 2, 3, 4, 7, 8, 16}) {
    Metrics metrics;
    CpuInterleave tree(cpus, &metrics);
    ReferenceInterleave ref(cpus);
    std::mt19937 rng(12345u + cpus);
    for (int step = 0; step < 500; ++step) {
      const uint32_t pick = rng() % 100;
      if (pick < 70) {
        const uint16_t cpu = static_cast<uint16_t>(rng() % cpus);
        const Cycles delta = rng() % 1000;
        tree.Accrue(cpu, delta);
        ref.Accrue(cpu, delta);
      } else if (pick < 85) {
        const Cycles delta = rng() % 500;
        tree.AdvanceAll(delta);
        ref.AdvanceAll(delta);
      } else {
        tree.AlignAll();
        ref.AlignAll();
      }
      ExpectAgreement(tree, ref, rng());
    }
  }
}

TEST(CpuInterleaveTree, TiesResolveToLowestIndex) {
  Metrics metrics;
  CpuInterleave tree(4, &metrics);
  EXPECT_EQ(tree.NextCpu(), 0u);  // all zero: lowest index wins
  tree.Accrue(0, 10);
  EXPECT_EQ(tree.NextCpu(), 1u);
  tree.Accrue(1, 10);
  tree.Accrue(2, 10);
  tree.Accrue(3, 10);
  EXPECT_EQ(tree.NextCpu(), 0u);  // tied again at 10
  EXPECT_EQ(tree.NextCpuIn(0b1100), 2u);  // tie inside the mask: lowest set bit
}

TEST(CpuInterleaveTree, AlignAllSynchronizesToMakespan) {
  Metrics metrics;
  CpuInterleave tree(3, &metrics);
  tree.Accrue(1, 100);
  tree.Accrue(2, 40);
  EXPECT_EQ(tree.Makespan(), 100u);
  tree.AlignAll();
  for (uint16_t k = 0; k < 3; ++k) {
    EXPECT_EQ(tree.local_now(k), 100u);
  }
  EXPECT_EQ(tree.NextCpu(), 0u);
  tree.AdvanceAll(7);
  EXPECT_EQ(tree.Makespan(), 107u);
  EXPECT_EQ(tree.local_now(2), 107u);
}

TEST(CpuInterleaveTree, MaskedQuerySelectsLeastBehindWithinMask) {
  Metrics metrics;
  CpuInterleave tree(4, &metrics);
  tree.Accrue(0, 5);
  tree.Accrue(1, 50);
  tree.Accrue(2, 20);
  tree.Accrue(3, 30);
  EXPECT_EQ(tree.NextCpu(), 0u);
  EXPECT_EQ(tree.NextCpuIn(0b1110), 2u);  // 0 excluded: 2 is least behind
  EXPECT_EQ(tree.NextCpuIn(0b1010), 3u);
  // Mask bits beyond the pool are ignored as long as one real CPU is set.
  EXPECT_EQ(tree.NextCpuIn(0xFFF0u | 0b0100), 2u);
}

TEST(CpuInterleaveDeathTest, NonIntersectingMaskAborts) {
  Metrics metrics;
  CpuInterleave tree(2, &metrics);
  EXPECT_DEATH(tree.NextCpuIn(0), "selects no CPU");
  EXPECT_DEATH(tree.NextCpuIn(0b100), "selects no CPU");
}

// ---------------------------------------------------------------------------
// EventQueue: pooled closures.
// ---------------------------------------------------------------------------

TEST(EventQueuePool, LargeCapturesFallBackToHeapAndStillRun) {
  EventQueue queue;
  struct Big {
    char payload[128];
    int* sink;
  };
  int fired = 0;
  Big big{};
  big.payload[0] = 42;
  big.sink = &fired;
  static_assert(sizeof(Big) > 48, "test needs an over-inline-buffer capture");
  queue.Schedule(10, [big] { *big.sink += big.payload[0]; });
  EXPECT_EQ(queue.RunDue(10), 1u);
  EXPECT_EQ(fired, 42);
}

TEST(EventQueuePool, SlotsRecycleAcrossManyRounds) {
  EventQueue queue;
  uint64_t sum = 0;
  // Far more events than one slab (64 slots), scheduled and drained in
  // waves, so slots must be recycled for the pool not to grow unboundedly.
  for (int wave = 0; wave < 50; ++wave) {
    for (int i = 0; i < 100; ++i) {
      queue.Schedule(static_cast<Cycles>(wave * 100 + i), [&sum, i] { sum += i; });
    }
    EXPECT_EQ(queue.RunDue((wave + 1) * 100), 100u);
  }
  EXPECT_EQ(sum, 50u * 4950u);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueuePool, FifoOrderSurvivesInterleavedScheduleAndRun) {
  EventQueue queue;
  std::vector<int> order;
  queue.Schedule(10, [&] {
    order.push_back(0);
    // Scheduled mid-run at the same due time: must run after everything
    // already queued for t=10 (later sequence number).
    queue.Schedule(10, [&] { order.push_back(3); });
  });
  queue.Schedule(10, [&] { order.push_back(1); });
  queue.Schedule(10, [&] { order.push_back(2); });
  EXPECT_EQ(queue.RunDue(10), 4u);
  ASSERT_EQ(order.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

// ---------------------------------------------------------------------------
// End-to-end: double-run byte-equality across the P11/P12/P13 shapes.
// ---------------------------------------------------------------------------

struct Snapshot {
  std::map<std::string, uint64_t, std::less<>> counters;
  std::string trace_json;
  Cycles clock = 0;
  Cycles makespan = 0;
  bool ok = false;

  friend bool operator==(const Snapshot& a, const Snapshot& b) {
    return a.ok && b.ok && a.counters == b.counters && a.trace_json == b.trace_json &&
           a.clock == b.clock && a.makespan == b.makespan;
  }
};

enum class Shape { kFaultStorm, kSharedStorm, kRunQueueMix };

// One run of a P11/P12/P13-shaped workload, everything observable captured.
Snapshot RunShape(Shape shape, uint16_t cpus) {
  Snapshot out;
  KernelConfig config;
  config.memory_frames = 64;
  config.records_per_pack = 8192;
  config.cpu_count = cpus;
  config.vp_count = 6;
  config.trace.enabled = true;
  if (shape == Shape::kSharedStorm) {
    config.async_paging = true;  // P12: in-flight transfers keep PTWs locked
  }
  if (shape == Shape::kRunQueueMix) {
    config.sharded_runqueues = true;  // P13: sharded queues + stealing,
    config.steal = true;              // charged interconnect
    config.connect_cost = 40;
  }
  Kernel kernel{config};
  if (!kernel.Boot().ok()) {
    return out;
  }
  PathWalker walker(&kernel.gates());
  const uint32_t processes = shape == Shape::kFaultStorm ? 4 : 6;
  std::vector<ProcessId> pids;
  std::vector<ProcContext*> ctxs;
  for (uint32_t i = 0; i < processes; ++i) {
    auto pid = kernel.processes().CreateProcess(TestSubject("U" + std::to_string(i)));
    if (!pid.ok()) {
      return out;
    }
    pids.push_back(*pid);
    ctxs.push_back(kernel.processes().Context(*pid));
  }
  if (shape == Shape::kSharedStorm) {
    // P12: everyone sweeps one shared segment, staggered starts.
    constexpr uint32_t kSharedPages = 24;
    auto entry = walker.CreateSegment(*ctxs[0], ">work>shared", WorldAcl(), Label::SystemLow());
    if (!entry.ok()) {
      return out;
    }
    for (uint32_t i = 0; i < processes; ++i) {
      auto segno = kernel.gates().Initiate(*ctxs[i], *entry);
      if (!segno.ok()) {
        return out;
      }
      if (i == 0) {
        for (uint32_t p = 0; p < kSharedPages; ++p) {
          (void)kernel.gates().Write(*ctxs[0], *segno, p * kPageWords, p + 1);
        }
      }
      std::vector<UserOp> program;
      const uint32_t start = i * (kSharedPages / processes);
      for (uint32_t r = 0; r < 2; ++r) {
        for (uint32_t p = 0; p < kSharedPages; ++p) {
          program.push_back(UserOp::Read(*segno, ((start + p) % kSharedPages) * kPageWords));
        }
      }
      (void)kernel.processes().SetProgram(pids[i], std::move(program));
    }
  } else {
    for (uint32_t i = 0; i < processes; ++i) {
      auto entry = walker.CreateSegment(*ctxs[i], ">work>p" + std::to_string(i), WorldAcl(),
                                        Label::SystemLow());
      if (!entry.ok()) {
        return out;
      }
      auto segno = kernel.gates().Initiate(*ctxs[i], *entry);
      if (!segno.ok()) {
        return out;
      }
      std::vector<UserOp> program;
      if (shape == Shape::kFaultStorm) {
        // P11: 4 x 24 pages > 64 frames, every touch faults.
        for (uint32_t p = 0; p < 24; ++p) {
          (void)kernel.gates().Write(*ctxs[i], *segno, p * kPageWords, p + 1);
        }
        for (uint32_t r = 0; r < 2; ++r) {
          for (uint32_t p = 0; p < 24; ++p) {
            program.push_back(UserOp::Read(*segno, p * kPageWords));
          }
        }
      } else {
        // P13: compute + paged writes, enough churn to exercise the queues.
        for (uint32_t n = 0; n < 60; ++n) {
          if (n % 3 == 0) {
            program.push_back(UserOp::Compute(25));
          } else {
            program.push_back(UserOp::Write(*segno, (n % 8) * kPageWords + n, n * 7 + i));
          }
        }
      }
      (void)kernel.processes().SetProgram(pids[i], std::move(program));
    }
  }
  kernel.ctx().smp.AlignAll();
  if (!kernel.processes().RunUntilQuiescent(8000000).ok()) {
    return out;
  }
  out.counters = kernel.metrics().counters();
  out.trace_json = TraceExporter::Export(kernel.ctx().trace);
  out.clock = kernel.clock().now();
  out.makespan = kernel.ctx().smp.Makespan();
  out.ok = true;
  return out;
}

class ShapeDeterminism : public ::testing::TestWithParam<std::tuple<Shape, uint16_t>> {};

TEST_P(ShapeDeterminism, DoubleRunIsByteIdentical) {
  const auto [shape, cpus] = GetParam();
  const Snapshot a = RunShape(shape, cpus);
  const Snapshot b = RunShape(shape, cpus);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_TRUE(a.counters == b.counters);
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_EQ(a.clock, b.clock);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_GT(a.counters.at("hw.translations"), 0u);  // the run did real work
}

std::string ShapeParamName(const ::testing::TestParamInfo<std::tuple<Shape, uint16_t>>& info) {
  const Shape shape = std::get<0>(info.param);
  const char* name = shape == Shape::kFaultStorm    ? "FaultStorm"
                     : shape == Shape::kSharedStorm ? "SharedStorm"
                                                    : "RunQueueMix";
  return std::string(name) + "_" + std::to_string(std::get<1>(info.param)) + "cpu";
}

INSTANTIATE_TEST_SUITE_P(
    P11P12P13, ShapeDeterminism,
    ::testing::Combine(::testing::Values(Shape::kFaultStorm, Shape::kSharedStorm,
                                         Shape::kRunQueueMix),
                       ::testing::Values(uint16_t{1}, uint16_t{4}, uint16_t{16})),
    ShapeParamName);

}  // namespace
}  // namespace mks
