// Direct tests of the segment manager: activation, the UNCONSTRAINED
// deactivation rule (the contrast with the baseline's hierarchy-shape
// constraint), LRU replacement, and relocation plumbing.
#include <gtest/gtest.h>

#include "tests/kernel_fixture.h"

namespace mks {
namespace {

TEST(SegmentManager, ActivateIsIdempotentViaEnsureActive) {
  KernelFixture fx;
  ASSERT_TRUE(fx.boot_status.ok());
  const Segno segno = fx.MustCreate(">a>x");
  ASSERT_TRUE(fx.kernel.gates().Write(*fx.ctx, segno, 0, 1).ok());
  const KstEntry* entry = fx.kernel.known_segments().Lookup(fx.pid, segno);
  ASSERT_NE(entry, nullptr);
  const uint32_t first = fx.kernel.segments().FindIndex(entry->home.uid);
  ASSERT_NE(first, kNoAst);
  auto again = fx.kernel.segments().EnsureActive(entry->home.uid, entry->home.pack,
                                                 entry->home.vtoc, entry->home.quota_cell);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, first);
  EXPECT_EQ(fx.kernel.metrics().Get("seg.activations"),
            fx.kernel.metrics().Get("seg.activations"));
}

TEST(SegmentManager, DeactivationIsNotConstrainedByHierarchyShape) {
  KernelFixture fx;
  ASSERT_TRUE(fx.boot_status.ok());
  KernelGates& gates = fx.kernel.gates();
  // Build >top>mid>leaf and touch the leaf so everything activates.
  const Segno leaf = fx.MustCreate(">top>mid>leaf");
  ASSERT_TRUE(gates.Write(*fx.ctx, leaf, 0, 1).ok());

  // The *directory* >top's backing segment is active (its pages were grown).
  auto top = gates.Search(*fx.ctx, gates.RootId(), "top");
  ASSERT_TRUE(top.ok());
  const SegmentUid top_uid(top->value);
  const uint32_t top_ast = fx.kernel.segments().FindIndex(top_uid);
  if (top_ast != kNoAst && fx.kernel.segments().Get(top_ast)->connections == 0) {
    // In the old supervisor this deactivation would be FORBIDDEN while the
    // leaf (an inferior) is active.  The new design permits it outright.
    EXPECT_TRUE(fx.kernel.segments().Deactivate(top_ast).ok());
    // And the leaf keeps working afterwards.
    auto value = gates.Read(*fx.ctx, leaf, 0);
    ASSERT_TRUE(value.ok());
    EXPECT_EQ(*value, 1u);
  }
}

TEST(SegmentManager, AstReplacementEvictsLruUnconnected) {
  KernelConfig config;
  config.ast_slots = 6;
  KernelFixture fx{config};
  ASSERT_TRUE(fx.boot_status.ok());
  KernelGates& gates = fx.kernel.gates();
  // Many segments touched once, then terminated, so their AST entries are
  // unconnected and eligible for replacement.
  for (int i = 0; i < 12; ++i) {
    const Segno segno = fx.MustCreate(">pool>s" + std::to_string(i));
    ASSERT_TRUE(gates.Write(*fx.ctx, segno, 0, 100 + i).ok());
    ASSERT_TRUE(gates.Terminate(*fx.ctx, segno).ok());
  }
  EXPECT_GT(fx.kernel.metrics().Get("seg.ast_replacements"), 0u);
  EXPECT_LE(fx.kernel.segments().active_count(), 6u);
  // Data written through the replaced activations survives.
  PathWalker walker(&gates);
  for (int i = 0; i < 12; ++i) {
    auto segno = walker.Initiate(*fx.ctx, ">pool>s" + std::to_string(i));
    ASSERT_TRUE(segno.ok());
    auto value = gates.Read(*fx.ctx, *segno, 0);
    ASSERT_TRUE(value.ok());
    EXPECT_EQ(*value, 100u + i);
    ASSERT_TRUE(gates.Terminate(*fx.ctx, *segno).ok());
  }
}

TEST(SegmentManager, ConnectedSegmentsCannotBeDeactivated) {
  KernelFixture fx;
  ASSERT_TRUE(fx.boot_status.ok());
  const Segno segno = fx.MustCreate(">a>locked");
  ASSERT_TRUE(fx.kernel.gates().Write(*fx.ctx, segno, 0, 1).ok());
  const KstEntry* entry = fx.kernel.known_segments().Lookup(fx.pid, segno);
  const uint32_t ast = fx.kernel.segments().FindIndex(entry->home.uid);
  ASSERT_NE(ast, kNoAst);
  EXPECT_GT(fx.kernel.segments().Get(ast)->connections, 0u);
  EXPECT_EQ(fx.kernel.segments().Deactivate(ast).code(), Code::kFailedPrecondition);
}

TEST(SegmentManager, RelocationRequiresDisconnection) {
  KernelFixture fx;
  ASSERT_TRUE(fx.boot_status.ok());
  const Segno segno = fx.MustCreate(">a>movable");
  ASSERT_TRUE(fx.kernel.gates().Write(*fx.ctx, segno, 0, 7).ok());
  const KstEntry* entry = fx.kernel.known_segments().Lookup(fx.pid, segno);
  const uint32_t ast = fx.kernel.segments().FindIndex(entry->home.uid);
  // Still connected: the segment manager refuses.
  EXPECT_EQ(fx.kernel.segments().Relocate(ast).code(), Code::kFailedPrecondition);
  // After severing, relocation succeeds and the data moves.
  fx.kernel.address_spaces().DisconnectEverywhere(entry->home.uid);
  auto home = fx.kernel.segments().Relocate(ast);
  ASSERT_TRUE(home.ok()) << home.status();
  EXPECT_NE(home->pack.value, entry->home.pack.value);
  const VtocEntry* moved = fx.kernel.ctx().volumes.pack(home->pack)->GetVtoc(home->vtoc);
  ASSERT_NE(moved, nullptr);
  EXPECT_EQ(moved->RecordsUsed(), 1u);
}

TEST(Gates, AccessModeMasksAreEnforcedByHardware) {
  KernelFixture fx;
  ASSERT_TRUE(fx.boot_status.ok());
  KernelGates& gates = fx.kernel.gates();
  // Read-only ACL for Smith.
  Acl acl;
  acl.Add(AclEntry{"Jones", "Projx", AccessModes::RWE()});
  acl.Add(AclEntry{"Smith", "Projx", AccessModes::R()});
  auto entry = gates.CreateSegment(*fx.ctx, gates.RootId(), "ro", acl, Label::SystemLow());
  ASSERT_TRUE(entry.ok());
  auto mine = gates.Initiate(*fx.ctx, *entry);
  ASSERT_TRUE(gates.Write(*fx.ctx, *mine, 0, 5).ok());

  auto smith_pid = fx.kernel.processes().CreateProcess(TestSubject("Smith"));
  ProcContext* smith = fx.kernel.processes().Context(*smith_pid);
  auto ro = gates.Initiate(*smith, *entry);
  ASSERT_TRUE(ro.ok());
  auto value = gates.Read(*smith, *ro, 0);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 5u);
  EXPECT_EQ(gates.Write(*smith, *ro, 0, 9).code(), Code::kNoAccess);
}

TEST(Gates, TerminateInvalidatesTheSegno) {
  KernelFixture fx;
  ASSERT_TRUE(fx.boot_status.ok());
  const Segno segno = fx.MustCreate(">a>gone");
  ASSERT_TRUE(fx.kernel.gates().Write(*fx.ctx, segno, 0, 1).ok());
  ASSERT_TRUE(fx.kernel.gates().Terminate(*fx.ctx, segno).ok());
  EXPECT_EQ(fx.kernel.gates().Read(*fx.ctx, segno, 0).code(), Code::kInvalidSegno);
  EXPECT_EQ(fx.kernel.gates().Terminate(*fx.ctx, segno).code(), Code::kInvalidSegno);
}

TEST(Gates, ReinitiationReturnsTheSameSegno) {
  KernelFixture fx;
  ASSERT_TRUE(fx.boot_status.ok());
  KernelGates& gates = fx.kernel.gates();
  auto entry = gates.CreateSegment(*fx.ctx, gates.RootId(), "same", WorldAcl(),
                                   Label::SystemLow());
  ASSERT_TRUE(entry.ok());
  auto first = gates.Initiate(*fx.ctx, *entry);
  auto second = gates.Initiate(*fx.ctx, *entry);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->value, second->value);
}

TEST(Gates, OutOfBoundsBeyondMaxLength) {
  KernelFixture fx;
  ASSERT_TRUE(fx.boot_status.ok());
  const Segno segno = fx.MustCreate(">a>bounded");
  EXPECT_EQ(fx.kernel.gates().Write(*fx.ctx, segno, kMaxSegmentPages * kPageWords, 1).code(),
            Code::kOutOfBounds);
  // The last addressable word is fine (and grows the final page).
  EXPECT_TRUE(
      fx.kernel.gates().Write(*fx.ctx, segno, kMaxSegmentPages * kPageWords - 1, 1).ok());
}

}  // namespace
}  // namespace mks
