// Shared helpers for kernel-level tests.
#ifndef MKS_TESTS_KERNEL_FIXTURE_H_
#define MKS_TESTS_KERNEL_FIXTURE_H_

#include <memory>
#include <string>

#include "src/fs/path_walker.h"
#include "src/kernel/kernel.h"

namespace mks {

inline Subject TestSubject(const std::string& person = "Jones", uint8_t level = 0,
                           uint32_t compartments = 0) {
  return Subject{Principal{person, "Projx"}, Label(level, compartments), /*ring=*/4};
}

inline Acl WorldAcl() {
  Acl acl;
  acl.Add(AclEntry{"*", "*", AccessModes::RWE()});
  return acl;
}

inline Acl OwnerOnlyAcl(const std::string& person) {
  Acl acl;
  acl.Add(AclEntry{person, "Projx", AccessModes::RWE()});
  return acl;
}

// A booted kernel plus one logged-in test process.
struct KernelFixture {
  explicit KernelFixture(KernelConfig config = KernelConfig{}) : kernel(config) {
    boot_status = kernel.Boot();
    if (boot_status.ok()) {
      auto created = kernel.processes().CreateProcess(TestSubject());
      if (created.ok()) {
        pid = *created;
        ctx = kernel.processes().Context(pid);
      }
    }
  }

  // Creates (dirs as needed) + initiates a segment; dies on failure.
  Segno MustCreate(const std::string& path) {
    PathWalker walker(&kernel.gates());
    auto entry = walker.CreateSegment(*ctx, path, WorldAcl(), Label::SystemLow());
    EXPECT_TRUE(entry.ok()) << path << ": " << entry.status();
    auto segno = kernel.gates().Initiate(*ctx, *entry);
    EXPECT_TRUE(segno.ok()) << path << ": " << segno.status();
    return *segno;
  }

  Kernel kernel;
  Status boot_status;
  ProcessId pid{};
  ProcContext* ctx = nullptr;
};

}  // namespace mks

#endif  // MKS_TESTS_KERNEL_FIXTURE_H_
