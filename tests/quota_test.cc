// Tests for quota cells and the quota semantics of the new design: static
// binding, the childless rule, overflow, persistence.
#include <gtest/gtest.h>

#include "tests/kernel_fixture.h"

namespace mks {
namespace {

struct QuotaCellFixture {
  KernelContext ctx{/*memory_frames=*/32, HwFeatures::KernelDesign(),
                    CostModel::kDefaultStructuredFactor, /*secret=*/1};
  CoreSegmentManager core_segs{&ctx};
  QuotaCellManager quota{&ctx, &core_segs};
  PackId pack{};
  VtocIndex vtoc{};

  QuotaCellFixture() {
    EXPECT_TRUE(quota.Init(8).ok());
    pack = ctx.volumes.AddPack(16, 8);
    auto v = ctx.volumes.pack(pack)->AllocateVtoc(SegmentUid(5), true);
    EXPECT_TRUE(v.ok());
    vtoc = *v;
  }
};

TEST(QuotaCell, CreateChargeOverflowRefund) {
  QuotaCellFixture fx;
  auto cell = fx.quota.CreateCell(fx.pack, fx.vtoc, 3);
  ASSERT_TRUE(cell.ok());
  EXPECT_TRUE(fx.quota.Charge(*cell, 2).ok());
  EXPECT_TRUE(fx.quota.Charge(*cell, 1).ok());
  EXPECT_EQ(fx.quota.Charge(*cell, 1).code(), Code::kQuotaOverflow);
  ASSERT_TRUE(fx.quota.Refund(*cell, 1).ok());
  EXPECT_TRUE(fx.quota.Charge(*cell, 1).ok());
  auto info = fx.quota.Info(*cell);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->count, 3u);
  EXPECT_EQ(info->limit, 3u);
}

TEST(QuotaCell, PersistsToVtocOnFlush) {
  QuotaCellFixture fx;
  auto cell = fx.quota.CreateCell(fx.pack, fx.vtoc, 10);
  ASSERT_TRUE(cell.ok());
  ASSERT_TRUE(fx.quota.Charge(*cell, 4).ok());
  ASSERT_TRUE(fx.quota.FlushCell(*cell).ok());
  const VtocEntry* entry = fx.ctx.volumes.pack(fx.pack)->GetVtoc(fx.vtoc);
  EXPECT_EQ(entry->quota.count, 4u);
  EXPECT_EQ(entry->quota.limit, 10u);
}

TEST(QuotaCell, LoadIsIdempotent) {
  QuotaCellFixture fx;
  auto cell = fx.quota.CreateCell(fx.pack, fx.vtoc, 10);
  ASSERT_TRUE(cell.ok());
  auto again = fx.quota.LoadCell(fx.pack, fx.vtoc);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->value, cell->value);
  EXPECT_EQ(fx.quota.cached_count(), 1u);
}

TEST(QuotaCell, DestroyRequiresZeroCount) {
  QuotaCellFixture fx;
  auto cell = fx.quota.CreateCell(fx.pack, fx.vtoc, 10);
  ASSERT_TRUE(cell.ok());
  ASSERT_TRUE(fx.quota.Charge(*cell, 1).ok());
  EXPECT_EQ(fx.quota.DestroyCell(*cell).code(), Code::kNonEmpty);
  ASSERT_TRUE(fx.quota.Refund(*cell, 1).ok());
  EXPECT_TRUE(fx.quota.DestroyCell(*cell).ok());
  const VtocEntry* entry = fx.ctx.volumes.pack(fx.pack)->GetVtoc(fx.vtoc);
  EXPECT_FALSE(entry->quota.present);
}

TEST(QuotaCell, CacheTableBounded) {
  QuotaCellFixture fx;  // 8 slots
  for (int i = 0; i < 8; ++i) {
    auto v = fx.ctx.volumes.pack(fx.pack)->AllocateVtoc(SegmentUid(100 + i), true);
    if (!v.ok()) {
      break;  // vtoc slots < 8 is fine; the loop below still exercises limits
    }
    (void)fx.quota.CreateCell(fx.pack, *v, 1);
  }
  EXPECT_LE(fx.quota.cached_count(), 8u);
}

// --- end-to-end quota semantics through the kernel ---

TEST(QuotaSemantics, ChildlessRuleEnforced) {
  KernelFixture fx;
  ASSERT_TRUE(fx.boot_status.ok());
  KernelGates& gates = fx.kernel.gates();
  auto dir = gates.CreateDirectory(*fx.ctx, gates.RootId(), "q", WorldAcl(), Label::SystemLow());
  ASSERT_TRUE(dir.ok());
  // Childless: designation works.
  ASSERT_TRUE(gates.SetQuota(*fx.ctx, *dir, 100).ok());
  auto q = gates.GetQuota(*fx.ctx, *dir);
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->designated);
  EXPECT_EQ(q->limit, 100u);
  // Undesignate while childless: allowed.
  ASSERT_TRUE(gates.RemoveQuota(*fx.ctx, *dir).ok());
  ASSERT_TRUE(gates.SetQuota(*fx.ctx, *dir, 100).ok());
  // With a child present, designation state is frozen.
  ASSERT_TRUE(gates.CreateSegment(*fx.ctx, *dir, "child", WorldAcl(), Label::SystemLow()).ok());
  EXPECT_EQ(gates.RemoveQuota(*fx.ctx, *dir).code(), Code::kNonEmpty);
  auto sub = gates.CreateDirectory(*fx.ctx, *dir, "subdir", WorldAcl(), Label::SystemLow());
  ASSERT_TRUE(sub.ok());
  ASSERT_TRUE(gates.CreateSegment(*fx.ctx, *sub, "x", WorldAcl(), Label::SystemLow()).ok());
  EXPECT_EQ(gates.SetQuota(*fx.ctx, *sub, 5).code(), Code::kNonEmpty);
}

TEST(QuotaSemantics, GrowthChargesTheStaticCellAndOverflows) {
  KernelFixture fx;
  ASSERT_TRUE(fx.boot_status.ok());
  KernelGates& gates = fx.kernel.gates();
  auto dir = gates.CreateDirectory(*fx.ctx, gates.RootId(), "q", WorldAcl(), Label::SystemLow());
  ASSERT_TRUE(dir.ok());
  ASSERT_TRUE(gates.SetQuota(*fx.ctx, *dir, 6).ok());
  auto seg = gates.CreateSegment(*fx.ctx, *dir, "data", WorldAcl(), Label::SystemLow());
  ASSERT_TRUE(seg.ok());
  auto segno = gates.Initiate(*fx.ctx, *seg);
  ASSERT_TRUE(segno.ok());
  // The directory's own backing page consumed 1 of the 6; five more fit.
  for (uint32_t p = 0; p < 5; ++p) {
    ASSERT_TRUE(gates.Write(*fx.ctx, *segno, p * kPageWords, 1).ok()) << p;
  }
  EXPECT_EQ(gates.Write(*fx.ctx, *segno, 5 * kPageWords, 1).code(), Code::kQuotaOverflow);
  auto q = gates.GetQuota(*fx.ctx, *dir);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->count, 6u);
  // The root's cell was NOT charged for pages under the inferior quota dir.
  auto root_q = gates.GetQuota(*fx.ctx, gates.RootId());
  ASSERT_TRUE(root_q.ok());
  EXPECT_LT(root_q->count, 6u);
}

TEST(QuotaSemantics, DeleteRefundsStorage) {
  KernelFixture fx;
  ASSERT_TRUE(fx.boot_status.ok());
  KernelGates& gates = fx.kernel.gates();
  auto dir = gates.CreateDirectory(*fx.ctx, gates.RootId(), "q", WorldAcl(), Label::SystemLow());
  ASSERT_TRUE(dir.ok());
  ASSERT_TRUE(gates.SetQuota(*fx.ctx, *dir, 50).ok());
  auto seg = gates.CreateSegment(*fx.ctx, *dir, "data", WorldAcl(), Label::SystemLow());
  ASSERT_TRUE(seg.ok());
  auto segno = gates.Initiate(*fx.ctx, *seg);
  ASSERT_TRUE(segno.ok());
  for (uint32_t p = 0; p < 8; ++p) {
    ASSERT_TRUE(gates.Write(*fx.ctx, *segno, p * kPageWords, 1).ok());
  }
  auto before = gates.GetQuota(*fx.ctx, *dir);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(gates.Delete(*fx.ctx, *dir, "data").ok());
  auto after = gates.GetQuota(*fx.ctx, *dir);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->count + 8, before->count);
}

}  // namespace
}  // namespace mks
